"""Load/store queue, store-to-load forwarding, and speculative-load
disambiguation with a collision history table.

Loads issue speculatively in the presence of older stores with unresolved
addresses.  When a store later resolves to an address that a younger,
already-executed load read, the processor takes a full squash from that load
and the collision history table (CHT) learns the load's PC so future
instances wait for older store addresses to resolve (paper Section 3.1).

The queue is fully indexed -- the per-cycle ordering checks that the issue
stage performs for every load candidate never scan the entry list:

* ``_by_seq`` maps sequence number to entry (insertion order is program
  order, so it doubles as the in-order queue);
* ``_unresolved_stores`` is the sorted sequence-number list of stores whose
  address is still unknown, making ``older_stores_unresolved`` an O(1)
  min-lookup;
* ``_stores_by_addr`` / ``_loads_by_addr`` bucket resolved stores and
  executed loads by aligned word address, each bucket sorted by sequence
  number, so forwarding (youngest older store) and violation detection
  (younger executed loads) are a dict probe plus a bisect.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Tuple

from repro.functional.memory import SparseMemory
from repro.isa.instruction import DynInst
from repro.isa.program import INST_SIZE


class CollisionHistoryTable:
    """Direct-mapped table of load PCs that have caused memory-order
    violations; a hit makes the load wait for older store addresses."""

    def __init__(self, entries: int = 256):
        self.entries = entries
        self._tags: List[Optional[int]] = [None] * entries
        self.trainings = 0
        #: Dynamic loads whose issue was constrained by a prediction --
        #: counted once per dynamic load by the issue stage, not per poll.
        self.hits = 0

    def _index(self, pc: int) -> int:
        return (pc // INST_SIZE) % self.entries

    def predicts_collision(self, pc: int) -> bool:
        """Pure lookup: does the table predict a collision for this PC?

        Deliberately side-effect free -- a stalled load is re-polled by the
        scheduler every cycle, so counting here would inflate ``hits`` with
        poll attempts.  The issue stage records the hit once per dynamic
        load via :meth:`record_hit`.
        """
        return self._tags[self._index(pc)] == pc

    def record_hit(self) -> None:
        """Count one dynamic load constrained by a collision prediction."""
        self.hits += 1

    def train(self, pc: int) -> None:
        self.trainings += 1
        self._tags[self._index(pc)] = pc


class _MemEntry:
    __slots__ = ("dyn", "is_store", "addr", "data_ready", "executed")

    def __init__(self, dyn: DynInst, is_store_op: bool):
        self.dyn = dyn
        self.is_store = is_store_op
        self.addr: Optional[int] = None
        self.data_ready = False
        self.executed = False


def _remove_sorted(seqs: List[int], seq: int) -> None:
    """Remove ``seq`` from a sorted sequence-number list, if present."""
    idx = bisect_left(seqs, seq)
    if idx < len(seqs) and seqs[idx] == seq:
        del seqs[idx]


class LoadStoreQueue:
    """The in-order queue of in-flight memory operations.

    Entries are allocated at rename (program order) and removed at
    retirement or squash, so ordering checks can compare positions by
    sequence number.
    """

    def __init__(self, size: int = 64):
        self.size = size
        #: seq -> entry; dict insertion order is program order.
        self._by_seq: Dict[int, _MemEntry] = {}
        #: Sorted seqs of stores whose address has not resolved yet.
        self._unresolved_stores: List[int] = []
        #: aligned addr -> sorted seqs of address-resolved stores.
        self._stores_by_addr: Dict[int, List[int]] = {}
        #: aligned addr -> sorted seqs of executed loads.
        self._loads_by_addr: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_seq)

    def has_space(self, count: int = 1) -> bool:
        return len(self._by_seq) + count <= self.size

    def insert(self, dyn: DynInst) -> None:
        if not self.has_space():
            raise RuntimeError("LSQ overflow")
        entry = _MemEntry(dyn, dyn.info.is_store)
        self._by_seq[dyn.seq] = entry
        if entry.is_store:
            # Inserts happen in program order, so append keeps the list
            # sorted; insort guards unit tests that insert out of order.
            insort(self._unresolved_stores, dyn.seq)
        dyn.in_lsq = True

    def _drop_indexes(self, entry: _MemEntry) -> None:
        """Remove one entry from the address/unresolved indices."""
        seq = entry.dyn.seq
        if entry.is_store:
            if entry.addr is None:
                _remove_sorted(self._unresolved_stores, seq)
            else:
                bucket = self._stores_by_addr.get(entry.addr)
                if bucket is not None:
                    _remove_sorted(bucket, seq)
                    if not bucket:
                        del self._stores_by_addr[entry.addr]
        elif entry.executed and entry.addr is not None:
            bucket = self._loads_by_addr.get(entry.addr)
            if bucket is not None:
                _remove_sorted(bucket, seq)
                if not bucket:
                    del self._loads_by_addr[entry.addr]

    def remove(self, dyn: DynInst) -> None:
        entry = self._by_seq.pop(dyn.seq, None)
        if entry is not None:
            self._drop_indexes(entry)
            dyn.in_lsq = False

    def squash(self, squashed_seqs: set) -> int:
        """Drop entries belonging to squashed instructions; returns count."""
        doomed = [seq for seq in self._by_seq if seq in squashed_seqs]
        for seq in doomed:
            entry = self._by_seq.pop(seq)
            self._drop_indexes(entry)
            entry.dyn.in_lsq = False
        return len(doomed)

    def _find(self, dyn: DynInst) -> Optional[_MemEntry]:
        return self._by_seq.get(dyn.seq)

    # ------------------------------------------------------------------
    # store side
    # ------------------------------------------------------------------
    def resolve_store(self, dyn: DynInst, addr: int) -> List[DynInst]:
        """Record a store's resolved address and data.

        Returns the younger loads that already executed against the same
        word -- each is a memory-order violation requiring a squash.
        """
        entry = self._by_seq.get(dyn.seq)
        if entry is None or not entry.is_store:
            return []
        aligned = SparseMemory.align(addr)
        if entry.addr is None:
            _remove_sorted(self._unresolved_stores, dyn.seq)
            insort(self._stores_by_addr.setdefault(aligned, []), dyn.seq)
        elif entry.addr != aligned:
            # Re-resolution to a new address (defensive; completions fire
            # once per dynamic store in the current pipeline).
            self._drop_indexes(entry)
            insort(self._stores_by_addr.setdefault(aligned, []), dyn.seq)
        entry.addr = aligned
        entry.data_ready = True
        entry.executed = True
        loads = self._loads_by_addr.get(aligned)
        if not loads:
            return []
        by_seq = self._by_seq
        return [by_seq[seq].dyn
                for seq in loads[bisect_right(loads, dyn.seq):]]

    # ------------------------------------------------------------------
    # load side
    # ------------------------------------------------------------------
    def record_load(self, dyn: DynInst, addr: int) -> None:
        entry = self._by_seq.get(dyn.seq)
        if entry is None or entry.is_store:
            return
        aligned = SparseMemory.align(addr)
        if entry.executed and entry.addr == aligned:
            return
        if entry.executed and entry.addr is not None:
            self._drop_indexes(entry)
        entry.addr = aligned
        entry.executed = True
        insort(self._loads_by_addr.setdefault(aligned, []), dyn.seq)

    def forward_from(self, dyn: DynInst, addr: int
                     ) -> Tuple[Optional[DynInst], bool]:
        """Find the youngest older store to the same word.

        Returns ``(store, data_ready)`` -- ``store`` is ``None`` when no
        older store matches.  ``data_ready`` is False when the matching
        store has not produced its data yet (the load must wait).
        """
        stores = self._stores_by_addr.get(SparseMemory.align(addr))
        if not stores:
            return None, True
        idx = bisect_left(stores, dyn.seq)
        if idx == 0:
            return None, True
        best = self._by_seq[stores[idx - 1]]
        return best.dyn, best.data_ready

    def older_stores_unresolved(self, dyn: DynInst) -> bool:
        """True when any older store has not yet resolved its address."""
        unresolved = self._unresolved_stores
        return bool(unresolved) and unresolved[0] < dyn.seq

    def older_store_conflict_possible(self, dyn: DynInst, addr: int) -> bool:
        """True when an older store either matches the address or is still
        unresolved (used by conservative, CHT-stalled loads)."""
        if self.older_stores_unresolved(dyn):
            return True
        stores = self._stores_by_addr.get(SparseMemory.align(addr))
        return bool(stores) and stores[0] < dyn.seq
