"""Load/store queue, store-to-load forwarding, and speculative-load
disambiguation with a collision history table.

Loads issue speculatively in the presence of older stores with unresolved
addresses.  When a store later resolves to an address that a younger,
already-executed load read, the processor takes a full squash from that load
and the collision history table (CHT) learns the load's PC so future
instances wait for older store addresses to resolve (paper Section 3.1).

The queue is fully indexed -- the per-cycle ordering checks that the issue
stage performs for every load candidate never scan the entry list:

* ``_by_seq`` maps sequence number to the in-flight instruction (insertion
  order is program order, so it doubles as the in-order queue); per-entry
  state (store flag, resolved address, data readiness) lives in the shared
  structure-of-arrays :class:`~repro.core.window.Window`, so the checks read
  flat list slots instead of entry objects;
* ``_unresolved_stores`` is the sorted sequence-number list of stores whose
  address is still unknown, making ``older_stores_unresolved`` an O(1)
  min-lookup;
* ``_stores_by_addr`` / ``_loads_by_addr`` bucket resolved stores and
  executed loads by aligned word address, each bucket sorted by sequence
  number, so forwarding (youngest older store) and violation detection
  (younger executed loads) are a dict probe plus a bisect.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Tuple

from repro.core import kernel
from repro.core.window import Window
from repro.functional.memory import WORD_SIZE
from repro.isa.instruction import DynInst
from repro.isa.program import INST_SIZE

#: Word alignment as a plain mask (``SparseMemory.align`` without the call).
_ALIGN_MASK = ~(WORD_SIZE - 1)


class CollisionHistoryTable:
    """Direct-mapped table of load PCs that have caused memory-order
    violations; a hit makes the load wait for older store addresses."""

    def __init__(self, entries: int = 256):
        self.entries = entries
        self._tags: List[Optional[int]] = [None] * entries
        self.trainings = 0
        #: Dynamic loads whose issue was constrained by a prediction --
        #: counted once per dynamic load by the issue stage, not per poll.
        self.hits = 0

    def _index(self, pc: int) -> int:
        return (pc // INST_SIZE) % self.entries

    def predicts_collision(self, pc: int) -> bool:
        """Pure lookup: does the table predict a collision for this PC?

        Deliberately side-effect free -- a stalled load is re-polled by the
        scheduler every cycle, so counting here would inflate ``hits`` with
        poll attempts.  The issue stage records the hit once per dynamic
        load via :meth:`record_hit`.
        """
        return self._tags[(pc // INST_SIZE) % self.entries] == pc

    def record_hit(self) -> None:
        """Count one dynamic load constrained by a collision prediction."""
        self.hits += 1

    def train(self, pc: int) -> None:
        self.trainings += 1
        self._tags[(pc // INST_SIZE) % self.entries] = pc


def _remove_sorted(seqs: List[int], seq: int) -> None:
    """Remove ``seq`` from a sorted sequence-number list, if present."""
    idx = bisect_left(seqs, seq)
    if idx < len(seqs) and seqs[idx] == seq:
        del seqs[idx]


class LoadStoreQueue:
    """The in-order queue of in-flight memory operations.

    Entries are allocated at rename (program order) and removed at
    retirement or squash, so ordering checks can compare positions by
    sequence number.
    """

    def __init__(self, size: int = 64, window: Optional[Window] = None):
        self.size = size
        #: Shared (or private, when standalone) structure-of-arrays state.
        self.window = window if window is not None else Window()
        #: seq -> in-flight instruction; dict insertion order is program
        #: order.  Entry state lives in the window arrays.
        self._by_seq: Dict[int, DynInst] = {}
        #: Sorted seqs of stores whose address has not resolved yet.
        self._unresolved_stores: List[int] = []
        #: aligned addr -> sorted seqs of address-resolved stores.
        self._stores_by_addr: Dict[int, List[int]] = {}
        #: aligned addr -> sorted seqs of executed loads.
        self._loads_by_addr: Dict[int, List[int]] = {}
        # Optional compiled probe loops (REPRO_KERNEL=compiled); both are
        # bit-identical reimplementations of the Python paths below.
        self._kernel_forward = self._kernel_unresolved = None
        backend, module = kernel.select_backend()
        if backend == "compiled":
            self._kernel_forward = module.lsq_forward_from
            self._kernel_unresolved = module.lsq_older_unresolved

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_seq)

    def has_space(self, count: int = 1) -> bool:
        return len(self._by_seq) + count <= self.size

    def insert(self, dyn: DynInst) -> None:
        by_seq = self._by_seq
        if len(by_seq) >= self.size:
            raise RuntimeError("LSQ overflow")
        seq = dyn.seq
        win = self.window
        if by_seq and seq - next(iter(by_seq)) > win.mask:
            # Two live entries may never share a ring slot (see Window docs).
            raise RuntimeError("window ring aliasing in load/store queue")
        by_seq[seq] = dyn
        slot = seq & win.mask
        is_store = dyn.info.is_store
        win.mem_is_store[slot] = is_store
        win.mem_addr[slot] = None
        win.mem_data_ready[slot] = False
        win.mem_executed[slot] = False
        if is_store:
            # Inserts happen in program order, so append keeps the list
            # sorted; insort guards unit tests that insert out of order.
            insort(self._unresolved_stores, seq)
        else:
            win.cht_counted[slot] = False
        dyn.in_lsq = True

    def _drop_indexes(self, seq: int) -> None:
        """Remove one entry from the address/unresolved indices."""
        win = self.window
        slot = seq & win.mask
        addr = win.mem_addr[slot]
        if win.mem_is_store[slot]:
            if addr is None:
                _remove_sorted(self._unresolved_stores, seq)
            else:
                bucket = self._stores_by_addr.get(addr)
                if bucket is not None:
                    _remove_sorted(bucket, seq)
                    if not bucket:
                        del self._stores_by_addr[addr]
        elif win.mem_executed[slot] and addr is not None:
            bucket = self._loads_by_addr.get(addr)
            if bucket is not None:
                _remove_sorted(bucket, seq)
                if not bucket:
                    del self._loads_by_addr[addr]

    def remove(self, dyn: DynInst) -> None:
        if self._by_seq.pop(dyn.seq, None) is not None:
            self._drop_indexes(dyn.seq)
            dyn.in_lsq = False

    def squash(self, squashed_seqs: set) -> int:
        """Drop entries belonging to squashed instructions; returns count."""
        by_seq = self._by_seq
        doomed = [seq for seq in by_seq if seq in squashed_seqs]
        for seq in doomed:
            dyn = by_seq.pop(seq)
            self._drop_indexes(seq)
            dyn.in_lsq = False
        return len(doomed)

    # ------------------------------------------------------------------
    # store side
    # ------------------------------------------------------------------
    def resolve_store(self, dyn: DynInst, addr: int) -> List[DynInst]:
        """Record a store's resolved address and data.

        Returns the younger loads that already executed against the same
        word -- each is a memory-order violation requiring a squash.
        """
        seq = dyn.seq
        by_seq = self._by_seq
        if seq not in by_seq:
            return []
        win = self.window
        slot = seq & win.mask
        if not win.mem_is_store[slot]:
            return []
        aligned = addr & _ALIGN_MASK
        old_addr = win.mem_addr[slot]
        if old_addr is None:
            _remove_sorted(self._unresolved_stores, seq)
            insort(self._stores_by_addr.setdefault(aligned, []), seq)
        elif old_addr != aligned:
            # Re-resolution to a new address (defensive; completions fire
            # once per dynamic store in the current pipeline).
            self._drop_indexes(seq)
            insort(self._stores_by_addr.setdefault(aligned, []), seq)
        win.mem_addr[slot] = aligned
        win.mem_data_ready[slot] = True
        win.mem_executed[slot] = True
        loads = self._loads_by_addr.get(aligned)
        if not loads:
            return []
        return [by_seq[s] for s in loads[bisect_right(loads, seq):]]

    # ------------------------------------------------------------------
    # load side
    # ------------------------------------------------------------------
    def record_load(self, dyn: DynInst, addr: int) -> None:
        seq = dyn.seq
        if seq not in self._by_seq:
            return
        win = self.window
        slot = seq & win.mask
        if win.mem_is_store[slot]:
            return
        aligned = addr & _ALIGN_MASK
        if win.mem_executed[slot]:
            if win.mem_addr[slot] == aligned:
                return
            if win.mem_addr[slot] is not None:
                self._drop_indexes(seq)
        win.mem_addr[slot] = aligned
        win.mem_executed[slot] = True
        insort(self._loads_by_addr.setdefault(aligned, []), seq)

    def forward_from(self, dyn: DynInst, addr: int
                     ) -> Tuple[Optional[DynInst], bool]:
        """Find the youngest older store to the same word.

        Returns ``(store, data_ready)`` -- ``store`` is ``None`` when no
        older store matches.  ``data_ready`` is False when the matching
        store has not produced its data yet (the load must wait).
        """
        win = self.window
        if self._kernel_forward is not None:
            return self._kernel_forward(self._stores_by_addr, self._by_seq,
                                        win.mem_data_ready, win.mask,
                                        dyn.seq, addr & _ALIGN_MASK)
        stores = self._stores_by_addr.get(addr & _ALIGN_MASK)
        if not stores:
            return None, True
        seq = dyn.seq
        idx = bisect_left(stores, seq)
        if idx == 0:
            return None, True
        best_seq = stores[idx - 1]
        return self._by_seq[best_seq], win.mem_data_ready[best_seq & win.mask]

    def older_stores_unresolved(self, dyn: DynInst) -> bool:
        """True when any older store has not yet resolved its address."""
        if self._kernel_unresolved is not None:
            return self._kernel_unresolved(self._unresolved_stores, dyn.seq)
        unresolved = self._unresolved_stores
        return bool(unresolved) and unresolved[0] < dyn.seq

    def older_store_conflict_possible(self, dyn: DynInst, addr: int) -> bool:
        """True when an older store either matches the address or is still
        unresolved (used by conservative, CHT-stalled loads)."""
        unresolved = self._unresolved_stores
        if unresolved and unresolved[0] < dyn.seq:
            return True
        stores = self._stores_by_addr.get(addr & _ALIGN_MASK)
        return bool(stores) and stores[0] < dyn.seq
