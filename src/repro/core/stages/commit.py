"""The in-order back end: the DIVA checker and retirement.

:class:`CommitDiva` drains the head of the reorder buffer, re-executes every
instruction on the architectural state through the DIVA checker, recovers
from mis-integrations (modelled as a full pipeline flush plus a destination
repair), and maintains the retirement-side statistics that the paper's
evaluation is built on.
"""

from __future__ import annotations

from typing import Optional

from repro.core.diva import DivaFault, SimulationError
from repro.core.stages.base import PipelineState, RecoveryController
from repro.core.stats import IntegrationType, ResultStatus, distance_bucket
from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass, is_load
from repro.isa.registers import REG_SP
from repro.obs.cpi import CPI_INTEGRATION_REPLAY


def integration_type(inst: StaticInst) -> Optional[IntegrationType]:
    """Categorise an instruction for the Figure 5 "Type" breakdown."""
    info = inst.info
    if info.is_load:
        if inst.ra == REG_SP:
            return IntegrationType.LOAD_SP
        return IntegrationType.LOAD_OTHER
    if info.is_cond_branch:
        return IntegrationType.BRANCH
    if info.fp:
        return IntegrationType.FP
    if info.cls in (OpClass.IALU, OpClass.IMUL):
        return IntegrationType.ALU
    return None


class CommitDiva:
    """DIVA check + in-order retirement (the commit point)."""

    name = "commit"

    def __init__(self, state: PipelineState, recovery: RecoveryController):
        self.state = state
        self.recovery = recovery
        # integration_type is pure per static instruction; memoise by PC so
        # retirement does not re-derive it for every dynamic instance.
        self._itype_by_pc: dict = {}

    def _integration_type(self, dyn: DynInst) -> Optional[IntegrationType]:
        cache = self._itype_by_pc
        itype = cache.get(dyn.pc, False)
        if itype is False:
            itype = cache[dyn.pc] = integration_type(dyn.inst)
        return itype

    # ------------------------------------------------------------------
    def tick(self) -> None:
        state = self.state
        rob_entries = state.rob._entries
        if not rob_entries:
            return
        budget = state.retire_budget
        stats = state.stats
        cycle = state.cycle
        prf_ready = state.prf.ready
        prf_values = state.prf.values
        diva = state.diva
        retired = 0
        width = state.config.retire_width
        while retired < width:
            if budget is not None and stats.retired >= budget:
                # Exact slice boundary: never retire past the budget, so a
                # resumed run stops on a precise instruction boundary.
                break
            if not rob_entries:
                break
            dyn = rob_entries[0]
            # _can_retire, inlined.
            if cycle <= dyn.rename_cycle + 1:
                break
            info = dyn.info
            if dyn.integrated:
                dest = dyn.dest_preg
                if dest is not None and not prf_ready[dest]:
                    break
            elif not dyn.completed:
                break
            if info.is_store:
                stall, accepted = state.mem.store(dyn.eff_addr or 0, cycle)
                if not accepted:
                    break
            # _observed_results, inlined.
            observed_value = None
            observed_taken = None
            observed_next_pc = None
            if info.is_store:
                observed_value = dyn.store_value
            elif info.is_cond_branch:
                observed_taken = dyn.branch_taken
            elif info.is_indirect_ctl:
                observed_next_pc = dyn.next_pc
            elif dyn.inst.dest is not None and dyn.dest_preg is not None:
                observed_value = prf_values[dyn.dest_preg]
            step, fault = diva.check_and_commit(
                dyn, observed_value, observed_taken, observed_next_pc)
            if fault is not None:
                self._handle_diva_fault(dyn, step, fault)
                self._retire_commit(dyn)
                retired += 1
                break
            self._retire_commit(dyn)
            retired += 1
            if state.arch.halted:
                break

    def flush(self, redirect_pc: int) -> None:
        """Retirement is in-order and architectural; nothing speculative to
        discard."""

    # ------------------------------------------------------------------
    def _can_retire(self, dyn: DynInst) -> bool:
        state = self.state
        if state.cycle <= dyn.rename_cycle + 1:
            return False
        if dyn.integrated:
            if (dyn.dest_preg is not None
                    and not state.prf.ready[dyn.dest_preg]):
                return False
            return True
        return dyn.completed

    def _observed_results(self, dyn: DynInst):
        """Collect what the timing core believes this instruction produced."""
        state = self.state
        observed_value = None
        observed_taken = None
        observed_next_pc = None
        inst = dyn.inst
        info = dyn.info
        if info.is_store:
            observed_value = dyn.store_value
        elif info.is_cond_branch:
            observed_taken = dyn.branch_taken
        elif info.is_indirect_ctl:
            observed_next_pc = dyn.next_pc
        elif inst.dest is not None and dyn.dest_preg is not None:
            observed_value = state.prf.value(dyn.dest_preg)
        return observed_value, observed_taken, observed_next_pc

    def _retire_commit(self, dyn: DynInst) -> None:
        """Post-DIVA retirement bookkeeping and statistics."""
        state = self.state
        state.rob.pop_head()
        state.renamer.commit(dyn)
        if dyn.in_lsq:
            state.lsq.remove(dyn)
        cycle = state.cycle
        dyn.retire_cycle = cycle
        state.last_retire_cycle = cycle
        if dyn.info.is_branch:
            # Only branches register predictions (see FrontEnd.tick).
            state.predictions.pop(dyn.seq, None)
        stats = state.stats
        stats.retired += 1
        if dyn.mis_integrated:
            # The refill after the mis-integration flush is replay work;
            # do_squash already blamed it on squash_recovery, override.
            state.stall_cause = CPI_INTEGRATION_REPLAY
        elif not (dyn.branch_mispredicted or dyn.mem_mispeculated):
            # An innocent retirement ends the recovery window: later
            # empty-ROB cycles are ordinary front-end supply again.
            state.stall_cause = None
        tracer = state.tracer
        if tracer is not None:
            tracer.on_retire(dyn, cycle)

        cache = self._itype_by_pc
        itype = cache.get(dyn.pc, False)
        if itype is False:
            itype = cache[dyn.pc] = integration_type(dyn.inst)
        if itype is not None:
            stats.retired_by_type[itype] += 1
        if dyn.info.is_cond_branch:
            stats.retired_branches += 1
            if dyn.branch_mispredicted or dyn.mis_integrated:
                stats.retired_mispredicted_branches += 1
                stats.branch_resolution_latency_sum += max(
                    0, dyn.complete_cycle - dyn.fetch_cycle)
        if dyn.integrated and not dyn.mis_integrated:
            if dyn.reverse_integrated:
                stats.integrated_reverse += 1
                if itype is not None:
                    stats.reverse_by_type[itype] += 1
            else:
                stats.integrated_direct += 1
            if itype is not None:
                stats.integration_by_type[itype] += 1
            stats.integration_distance[
                distance_bucket(dyn.integration_distance)] += 1
            if dyn.integration_status is not None:
                stats.integration_status[dyn.integration_status] += 1
            if dyn.integration_refcount:
                stats.integration_refcount[dyn.integration_refcount] += 1

    def _handle_diva_fault(self, dyn: DynInst, step,
                           fault: DivaFault) -> None:
        """Recover from a mis-integration (or other value fault).

        The paper models recovery as a complete pipeline flush.  We squash
        every younger instruction, repair the faulting instruction's
        destination mapping with a freshly allocated register holding the
        architecturally correct value, and restart fetch at the correct
        next PC.
        """
        state = self.state
        if not dyn.integrated:
            raise SimulationError(
                f"DIVA fault on non-integrated instruction {dyn} "
                f"({fault.kind}): timing core produced "
                f"{fault.observed_value!r}, expected {fault.correct_value!r}")
        dyn.mis_integrated = True
        state.stats.mis_integrations += 1
        if is_load(dyn.op):
            state.stats.load_mis_integrations += 1
            state.integration.train_lisp(dyn.inst.pc)
        else:
            state.stats.register_mis_integrations += 1

        squashed = state.rob.squash_younger_than(dyn.seq)
        self.recovery.do_squash(squashed, redirect_pc=step.next_pc)
        self.recovery.recover_predictor_after(dyn,
                                              taken=bool(step.taken),
                                              target=step.next_pc)
        # Repair the destination mapping with the correct value.
        dest = dyn.inst.dest_reg()
        if (dest is not None and dyn.dest_preg is not None
                and fault.kind == "value"):
            state.prf.release(dyn.dest_preg)
            fresh = state.prf.allocate(ready=True, value=step.dest_value)
            if fresh is None:
                raise SimulationError("no physical register available for "
                                      "mis-integration repair")
            state.map_table.set(dest, fresh, state.prf.gen[fresh])
            dyn.dest_preg = fresh
            dyn.dest_gen = state.prf.gen[fresh]
            state.preg_producer[fresh] = dyn
