"""Composable pipeline stages of the cycle-level processor model.

The 13-stage machine is modelled as four stage components behind the small
:class:`~repro.core.stages.base.Stage` protocol::

    FrontEnd          fetch(3) decode(1)          owns fetch PC + queue
    RenameIntegrate   rename(1)                   integration happens here
    IssueExecute      schedule(2) regread(2) ex wb owns RS/LSQ event queues
    CommitDiva        DIVA(1) retire(1)           owns architectural commit

They share a :class:`~repro.core.stages.base.PipelineState` datapath and a
:class:`~repro.core.stages.base.RecoveryController` for cross-stage
mis-speculation recovery.  :class:`~repro.core.pipeline.Processor` is the
thin engine that wires them together and advances the clock.
"""

from repro.core.stages.base import (
    PipelineState,
    RecoveryController,
    Stage,
)
from repro.core.stages.commit import CommitDiva, integration_type
from repro.core.stages.execute import IssueExecute
from repro.core.stages.frontend import FrontEnd
from repro.core.stages.rename import RenameIntegrate

__all__ = [
    "Stage",
    "PipelineState",
    "RecoveryController",
    "FrontEnd",
    "RenameIntegrate",
    "IssueExecute",
    "CommitDiva",
    "integration_type",
]
