"""Shared scaffolding for the pipeline stages.

The cycle-level model is decomposed into four stage components --
:class:`~repro.core.stages.frontend.FrontEnd`,
:class:`~repro.core.stages.rename.RenameIntegrate`,
:class:`~repro.core.stages.execute.IssueExecute` and
:class:`~repro.core.stages.commit.CommitDiva` -- that communicate through a
:class:`PipelineState` datapath object.  Each stage owns the machinery of its
pipeline segment and exposes the small :class:`Stage` interface; the
:class:`~repro.core.pipeline.Processor` engine wires them together and
advances the clock.

Mis-speculation recovery cuts across stages (a resolving branch lives in the
execution engine but must flush the front end and repair rename state), so
it is centralised in :class:`RecoveryController`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.isa.program import INST_SIZE
from repro.obs.cpi import CPI_SQUASH_RECOVERY

# The opcode-class groupings the stages route on (reservation-station
# occupancy, rename-complete classes, ALU-like execution, indirect control)
# are precomputed per opcode as OpInfo predicates -- ``needs_rs``,
# ``rename_complete``, ``is_alu``, ``is_indirect_ctl`` in
# :mod:`repro.isa.opcodes` -- so the per-cycle loops read attributes instead
# of hashing enum members into frozensets.


@runtime_checkable
class Stage(Protocol):
    """The interface every pipeline stage component exposes."""

    #: Short human-readable stage name (used in debugging/reports).
    name: str

    def tick(self) -> None:
        """Advance this stage by one cycle."""

    def flush(self, redirect_pc: int) -> None:
        """Discard in-flight work after a mis-speculation redirect."""


class PipelineState:
    """The shared datapath: substrates plus global bookkeeping.

    Stages mutate this object; it carries no per-stage storage (the fetch
    queue lives in the front end, the event queues in the execution stage).
    """

    __slots__ = (
        "program", "config", "arch", "diva", "mem", "predictor", "prf",
        "map_table", "renamer", "integration", "rob", "rs", "lsq", "cht",
        "window", "stats", "cycle", "seq", "last_retire_cycle",
        "preg_producer", "predictions", "retire_budget", "tracer",
        "stall_cause",
    )

    def __init__(self, *, program, config, arch, diva, mem, predictor, prf,
                 map_table, renamer, integration, rob, rs, lsq, cht, stats,
                 window=None):
        self.program = program
        self.config = config
        self.arch = arch
        self.diva = diva
        self.mem = mem
        self.predictor = predictor
        self.prf = prf
        self.map_table = map_table
        self.renamer = renamer
        self.integration = integration
        self.rob = rob
        self.rs = rs
        self.lsq = lsq
        self.cht = cht
        #: Shared structure-of-arrays in-flight state (falls back to the
        #: scheduler's private window for hand-wired test harnesses).
        self.window = window if window is not None else rs.window
        self.stats = stats

        # Global bookkeeping.
        self.cycle = 0
        self.seq = 0
        self.last_retire_cycle = 0
        self.preg_producer: Dict[int, DynInst] = {}
        self.predictions: Dict[int, object] = {}
        #: Exact retired-instruction stop (None = run to completion).  The
        #: commit stage refuses to retire past it, so a slice ends on a
        #: precise architectural instruction boundary.
        self.retire_budget: Optional[int] = None
        #: Optional :class:`~repro.obs.trace.PipelineTracer`.  Every stage
        #: hook is guarded by a ``tracer is None`` check, so an untraced
        #: run pays nothing for the observability layer.
        self.tracer = None
        #: Recovery blame for empty-ROB cycles (a CPI-stack bucket name
        #: from :mod:`repro.obs.cpi`, or None): set by squash/DIVA-fault
        #: recovery, cleared by the next innocent retirement.
        self.stall_cause: Optional[str] = None


class RecoveryController:
    """Cross-stage mis-speculation recovery.

    Squashing undoes rename effects youngest-first, clears scheduler and
    load/store-queue entries, and redirects the front end; predictor state is
    restored from the per-instruction checkpoint taken at fetch.
    """

    def __init__(self, state: PipelineState, frontend: "Stage"):
        self.state = state
        self.frontend = frontend

    # ------------------------------------------------------------------
    def squash_younger(self, dyn: DynInst, redirect_pc: int) -> None:
        """Squash everything younger than ``dyn`` (branch misprediction)."""
        squashed = self.state.rob.squash_younger_than(dyn.seq)
        self.do_squash(squashed, redirect_pc)
        self.recover_predictor_after(dyn, dyn.branch_taken, redirect_pc)

    def squash_from(self, dyn: DynInst, redirect_pc: int) -> None:
        """Squash ``dyn`` and everything younger (memory-order violation)."""
        squashed = self.state.rob.squash_younger_than(dyn.seq - 1)
        self.do_squash(squashed, redirect_pc)
        self.recover_predictor_before(dyn)

    def do_squash(self, squashed: List[DynInst], redirect_pc: int) -> None:
        """Common squash worker: walk the squashed instructions youngest
        first, undoing their rename effects, then flush the front end."""
        state = self.state
        tracer = state.tracer
        cycle = state.cycle
        seqs = set()
        for dyn in squashed:            # youngest first (ROB pop order)
            dyn.squashed = True
            seqs.add(dyn.seq)
            state.renamer.squash(dyn)
            state.predictions.pop(dyn.seq, None)
            state.stats.squashed += 1
            if tracer is not None:
                tracer.on_squash(dyn, cycle)
        if seqs:
            state.rs.squash(seqs)
            state.lsq.squash(seqs)
        self.frontend.flush(redirect_pc)
        # Empty-ROB cycles until the next innocent retirement are recovery,
        # not front-end supply (see repro.obs.cpi).
        state.stall_cause = CPI_SQUASH_RECOVERY

    # ------------------------------------------------------------------
    def recover_predictor_after(self, dyn: DynInst, taken: bool,
                                target: int) -> None:
        """Restore the front-end prediction state to "just after ``dyn``"."""
        if dyn.map_checkpoint is None:
            return
        predictor = self.state.predictor
        predictor.restore(dyn.map_checkpoint)
        cls = dyn.inst.info.cls
        if cls is OpClass.COND_BRANCH:
            predictor._push_history(taken)
        elif cls in (OpClass.CALL_DIRECT, OpClass.CALL_INDIRECT):
            predictor.ras.push(dyn.inst.pc + INST_SIZE)
        elif cls is OpClass.RETURN:
            predictor.ras.pop()

    def recover_predictor_before(self, dyn: DynInst) -> None:
        if dyn.map_checkpoint is not None:
            self.state.predictor.restore(dyn.map_checkpoint)
