"""The rename stage, where register integration happens.

:class:`RenameIntegrate` pulls decoded instructions from the front-end
queue, renames their sources, consults the integration table and either
points the instruction at an existing physical register (integration: the
instruction leaves the pipeline here, never issuing) or allocates a fresh
destination and dispatches it to the out-of-order engine.
"""

from __future__ import annotations

from typing import Optional

from repro.core.diva import SimulationError
from repro.core.stages.base import PipelineState, RecoveryController
from repro.core.stages.frontend import FrontEnd
from repro.core.stats import ResultStatus
from repro.integration.config import LispMode
from repro.isa import semantics
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.isa.program import INST_SIZE


class RenameIntegrate:
    """Rename + integration: the paper's modified register-rename stage."""

    name = "rename"

    def __init__(self, state: PipelineState, frontend: FrontEnd,
                 recovery: RecoveryController):
        self.state = state
        self.frontend = frontend
        self.recovery = recovery

    # ------------------------------------------------------------------
    def tick(self) -> None:
        state = self.state
        config = state.config
        fetch_queue = self.frontend.fetch_queue
        renamed = 0
        while renamed < config.rename_width and fetch_queue:
            dyn, ready_cycle = fetch_queue[0]
            if ready_cycle > state.cycle or state.rob.full:
                break
            info = dyn.info
            needs_rs = info.needs_rs
            needs_lsq = info.is_mem
            if needs_rs and not state.rs.has_space():
                break
            if needs_lsq and not state.lsq.has_space():
                break
            # Remove the instruction from the front-end queue before renaming
            # it: an integrated branch that redirects fetch flushes the queue
            # and must not flush itself.
            fetch_queue.popleft()
            if not self._rename_one(dyn):
                fetch_queue.appendleft((dyn, ready_cycle))
                break
            dyn.rename_cycle = state.cycle
            state.rob.push(dyn)
            state.stats.renamed += 1
            renamed += 1
            # An integrated branch that redirected fetch ends the rename
            # group (everything behind it in the queue was flushed).
            if dyn.branch_mispredicted and dyn.integrated:
                break

    def flush(self, redirect_pc: int) -> None:
        """Rename holds no inter-cycle state; nothing to discard."""

    # ------------------------------------------------------------------
    def _rename_one(self, dyn: DynInst) -> bool:
        """Rename (or integrate) one instruction; False means stall."""
        state = self.state
        inst = dyn.inst
        cls = dyn.cls
        state.renamer.lookup_sources(dyn)

        oracle = None
        if (state.config.integration.lisp_mode is LispMode.ORACLE
                and dyn.info.is_load):
            oracle = self._oracle_allow
        decision = state.integration.consider(dyn, dyn.call_depth,
                                              oracle_allow=oracle)
        if decision.suppressed_by_lisp or decision.suppressed_by_oracle:
            state.stats.lisp_suppressed += 1

        if decision.integrate:
            if self._apply_integration(dyn, decision):
                return True
            state.stats.refcount_saturation_failures += 1

        result = state.renamer.allocate_dest(dyn)
        if result is None:
            return False
        if result.allocated:
            state.preg_producer[dyn.dest_preg] = dyn
        state.integration.create_entries(dyn, dyn.call_depth)

        if cls is OpClass.CALL_DIRECT:
            link = inst.pc + INST_SIZE
            if dyn.dest_preg is not None:
                state.prf.set_value(dyn.dest_preg, link)
            dyn.result = link
            self._mark_rename_complete(dyn)
        elif dyn.info.rename_complete:
            self._mark_rename_complete(dyn)
        else:
            state.rs.insert(dyn)
            if dyn.info.is_mem:
                state.lsq.insert(dyn)
            dyn.dispatch_cycle = state.cycle
        return True

    def _mark_rename_complete(self, dyn: DynInst) -> None:
        dyn.executed = True
        dyn.completed = True
        dyn.complete_cycle = self.state.cycle

    # ------------------------------------------------------------------
    def _apply_integration(self, dyn: DynInst, decision) -> bool:
        """Point the instruction at the matched IT entry's result."""
        state = self.state
        entry = decision.entry
        if dyn.info.is_cond_branch:
            self._integrate_branch(dyn, entry)
            return True
        status = self._result_status(entry.out)
        if not state.renamer.integrate_dest(dyn, entry.out, entry.out_gen):
            return False
        dyn.integrated = True
        dyn.reverse_integrated = entry.is_reverse
        dyn.integration_distance = max(0, dyn.seq - entry.creator_seq)
        dyn.integration_status = status
        dyn.integration_refcount = state.prf.refcount[entry.out]
        self._mark_rename_complete(dyn)
        return True

    def _integrate_branch(self, dyn: DynInst, entry) -> None:
        """An integrating conditional branch resolves at rename."""
        state = self.state
        inst = dyn.inst
        outcome = bool(entry.branch_outcome)
        dyn.integrated = True
        dyn.reverse_integrated = entry.is_reverse
        dyn.integration_distance = max(0, dyn.seq - entry.creator_seq)
        dyn.branch_taken = outcome
        dyn.next_pc = inst.target if outcome else inst.pc + INST_SIZE
        self._mark_rename_complete(dyn)
        prediction = state.predictions.get(dyn.seq)
        if prediction is None:
            return
        mispredicted = state.predictor.resolve(inst, prediction, outcome,
                                               dyn.next_pc)
        if mispredicted:
            # Early resolution at rename: nothing younger has been renamed
            # yet, so only the front-end queues need flushing.
            dyn.branch_mispredicted = True
            self.frontend.flush(dyn.next_pc)
            self.recovery.recover_predictor_after(dyn, outcome, dyn.next_pc)

    def _result_status(self, preg: int) -> ResultStatus:
        """State of the to-be-integrated result (Figure 5 Status breakdown)."""
        state = self.state
        if state.prf.refcount[preg] == 0:
            return ResultStatus.SHADOW_SQUASH
        producer = state.preg_producer.get(preg)
        if producer is None or producer.retire_cycle >= 0:
            return ResultStatus.RETIRE
        if producer.issued or producer.completed:
            return ResultStatus.ISSUE
        return ResultStatus.RENAME

    def _oracle_allow(self, dyn: DynInst, entry) -> bool:
        """Approximate oracle load-suppression: allow the integration only if
        the value it would reuse matches the best currently-knowable value of
        the load (store-queue forwarding or committed memory)."""
        state = self.state
        if entry.out is None or not state.prf.ready[entry.out]:
            return True
        base_preg = dyn.src_pregs[0]
        if not state.prf.ready[base_preg]:
            return True
        addr = semantics.effective_address(state.prf.value(base_preg),
                                           dyn.inst.imm)
        store, data_ready = state.lsq.forward_from(dyn, addr)
        if store is not None:
            if not data_ready:
                return True
            expected = store.store_value
        else:
            expected = state.arch.memory.read(addr)
        expected = semantics.narrow_load_value(dyn.op, expected)
        return expected == state.prf.value(entry.out)
