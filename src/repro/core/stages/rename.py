"""The rename stage, where register integration happens.

:class:`RenameIntegrate` pulls decoded instructions from the front-end
queue, renames their sources, consults the integration table and either
points the instruction at an existing physical register (integration: the
instruction leaves the pipeline here, never issuing) or allocates a fresh
destination and dispatches it to the out-of-order engine.

The per-instruction work is written flat: source lookup reads the map-table
arrays directly, the integration preconditions (enabled, integrable opcode)
are tested before calling into the integration logic, and the destination
rename uses the allocation-free :meth:`~repro.rename.renamer.Renamer.
rename_dest` code path.  All decisions and statistics are identical to the
layered equivalents the unit tests exercise.
"""

from __future__ import annotations

from repro.core.stages.base import PipelineState, RecoveryController
from repro.core.stages.frontend import FrontEnd
from repro.core.stats import ResultStatus
from repro.integration.config import LispMode
from repro.isa import semantics
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.isa.program import INST_SIZE
from repro.isa.registers import REG_FZERO, REG_ZERO
from repro.rename.physical import ZERO_PREG


class RenameIntegrate:
    """Rename + integration: the paper's modified register-rename stage."""

    name = "rename"

    def __init__(self, state: PipelineState, frontend: FrontEnd,
                 recovery: RecoveryController):
        self.state = state
        self.frontend = frontend
        self.recovery = recovery
        icfg = state.config.integration
        # Hoisted integration preconditions (the config is immutable).
        self._int_enabled = icfg.enabled
        self._oracle_loads = icfg.lisp_mode is LispMode.ORACLE

    # ------------------------------------------------------------------
    def tick(self) -> None:
        state = self.state
        cycle = state.cycle
        fetch_queue = self.frontend.fetch_queue
        if not fetch_queue:
            return
        rob = state.rob
        rob_entries = rob._entries
        rob_size = rob.size
        rs = state.rs
        rs_waiting = rs._waiting
        rs_entries = rs.entries
        lsq = state.lsq
        lsq_by_seq = lsq._by_seq
        lsq_size = lsq.size
        stats = state.stats
        rename_one = self._rename_one
        renamed = 0
        width = state.config.rename_width
        tracer = state.tracer
        while renamed < width and fetch_queue:
            dyn, ready_cycle = fetch_queue[0]
            if ready_cycle > cycle or len(rob_entries) >= rob_size:
                break
            info = dyn.info
            if info.needs_rs and len(rs_waiting) >= rs_entries:
                break
            if info.is_mem and len(lsq_by_seq) >= lsq_size:
                break
            # Remove the instruction from the front-end queue before renaming
            # it: an integrated branch that redirects fetch flushes the queue
            # and must not flush itself.
            fetch_queue.popleft()
            if not rename_one(dyn):
                fetch_queue.appendleft((dyn, ready_cycle))
                break
            dyn.rename_cycle = cycle
            rob.push(dyn)
            stats.renamed += 1
            renamed += 1
            if tracer is not None:
                tracer.on_rename(dyn, cycle)
            # An integrated branch that redirected fetch ends the rename
            # group (everything behind it in the queue was flushed).
            if dyn.branch_mispredicted and dyn.integrated:
                break

    def flush(self, redirect_pc: int) -> None:
        """Rename holds no inter-cycle state; nothing to discard."""

    # ------------------------------------------------------------------
    def _rename_one(self, dyn: DynInst) -> bool:
        """Rename (or integrate) one instruction; False means stall."""
        state = self.state
        inst = dyn.inst
        info = dyn.info

        # Source lookup (Renamer.lookup_sources, inlined).
        map_table = state.map_table
        mt_pregs = map_table._pregs
        mt_gens = map_table._gens
        pregs = []
        gens = []
        for logical in inst.srcs:
            if logical == REG_ZERO or logical == REG_FZERO:
                pregs.append(ZERO_PREG)
                gens.append(0)
            else:
                pregs.append(mt_pregs[logical])
                gens.append(mt_gens[logical])
        dyn.src_pregs = pregs
        dyn.src_gens = gens

        if self._int_enabled and info.integrable:
            oracle = (self._oracle_allow
                      if self._oracle_loads and info.is_load else None)
            decision = state.integration.consider(dyn, dyn.call_depth,
                                                  oracle_allow=oracle)
            if decision.suppressed_by_lisp or decision.suppressed_by_oracle:
                state.stats.lisp_suppressed += 1
            if decision.integrate:
                if self._apply_integration(dyn, decision):
                    return True
                state.stats.refcount_saturation_failures += 1

        code = state.renamer.rename_dest(dyn)
        if code < 0:
            return False
        if code > 0:
            state.preg_producer[dyn.dest_preg] = dyn
        if self._int_enabled:
            state.integration.create_entries(dyn, dyn.call_depth)

        cycle = state.cycle
        cls = dyn.cls
        if cls is OpClass.CALL_DIRECT:
            link = inst.pc + INST_SIZE
            if dyn.dest_preg is not None:
                state.prf.set_value(dyn.dest_preg, link)
            dyn.result = link
            dyn.executed = True
            dyn.completed = True
            dyn.complete_cycle = cycle
        elif info.rename_complete:
            dyn.executed = True
            dyn.completed = True
            dyn.complete_cycle = cycle
        else:
            state.rs.insert(dyn)
            if info.is_mem:
                state.lsq.insert(dyn)
            dyn.dispatch_cycle = cycle
        return True

    def _mark_rename_complete(self, dyn: DynInst) -> None:
        dyn.executed = True
        dyn.completed = True
        dyn.complete_cycle = self.state.cycle

    # ------------------------------------------------------------------
    def _apply_integration(self, dyn: DynInst, decision) -> bool:
        """Point the instruction at the matched IT entry's result."""
        state = self.state
        entry = decision.entry
        if dyn.info.is_cond_branch:
            self._integrate_branch(dyn, entry)
            return True
        status = self._result_status(entry.out)
        if not state.renamer.integrate_dest(dyn, entry.out, entry.out_gen):
            return False
        dyn.integrated = True
        dyn.reverse_integrated = entry.is_reverse
        dyn.integration_distance = max(0, dyn.seq - entry.creator_seq)
        dyn.integration_status = status
        dyn.integration_refcount = state.prf.refcount[entry.out]
        self._mark_rename_complete(dyn)
        return True

    def _integrate_branch(self, dyn: DynInst, entry) -> None:
        """An integrating conditional branch resolves at rename."""
        state = self.state
        inst = dyn.inst
        outcome = bool(entry.branch_outcome)
        dyn.integrated = True
        dyn.reverse_integrated = entry.is_reverse
        dyn.integration_distance = max(0, dyn.seq - entry.creator_seq)
        dyn.branch_taken = outcome
        dyn.next_pc = inst.target if outcome else inst.pc + INST_SIZE
        self._mark_rename_complete(dyn)
        prediction = state.predictions.get(dyn.seq)
        if prediction is None:
            return
        mispredicted = state.predictor.resolve(inst, prediction, outcome,
                                               dyn.next_pc)
        if mispredicted:
            # Early resolution at rename: nothing younger has been renamed
            # yet, so only the front-end queues need flushing.
            dyn.branch_mispredicted = True
            self.frontend.flush(dyn.next_pc)
            self.recovery.recover_predictor_after(dyn, outcome, dyn.next_pc)

    def _result_status(self, preg: int) -> ResultStatus:
        """State of the to-be-integrated result (Figure 5 Status breakdown)."""
        state = self.state
        if state.prf.refcount[preg] == 0:
            return ResultStatus.SHADOW_SQUASH
        producer = state.preg_producer.get(preg)
        if producer is None or producer.retire_cycle >= 0:
            return ResultStatus.RETIRE
        if producer.issued or producer.completed:
            return ResultStatus.ISSUE
        return ResultStatus.RENAME

    def _oracle_allow(self, dyn: DynInst, entry) -> bool:
        """Approximate oracle load-suppression: allow the integration only if
        the value it would reuse matches the best currently-knowable value of
        the load (store-queue forwarding or committed memory)."""
        state = self.state
        if entry.out is None or not state.prf.ready[entry.out]:
            return True
        base_preg = dyn.src_pregs[0]
        if not state.prf.ready[base_preg]:
            return True
        addr = semantics.effective_address(state.prf.value(base_preg),
                                           dyn.inst.imm)
        store, data_ready = state.lsq.forward_from(dyn, addr)
        if store is not None:
            if not data_ready:
                return True
            expected = store.store_value
        else:
            expected = state.arch.memory.read(addr)
        expected = semantics.narrow_load_value(dyn.op, expected)
        return expected == state.prf.value(entry.out)
