"""The in-order front end: fetch and decode.

:class:`FrontEnd` owns the fetch program counter, the fetch/decode queue and
the interaction with the branch predictor and the instruction-side memory
path.  Fetched instructions are tagged with the cycle at which they become
visible to rename (modelling the 3 fetch + 1 decode stage latency plus any
instruction-cache miss stall).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.core.stages.base import PipelineState
from repro.isa.instruction import DynInst
from repro.isa.opcodes import is_branch
from repro.isa.program import INST_SIZE


class FrontEnd:
    """Fetch + decode: keeps the rename stage fed with predicted-path work."""

    name = "frontend"

    def __init__(self, state: PipelineState):
        self.state = state
        self.fetch_pc = state.program.entry
        self.fetch_resume_cycle = 0
        self.fetch_halted = False
        #: (DynInst, rename_ready_cycle) pairs in fetch order.
        self.fetch_queue: Deque[Tuple[DynInst, int]] = deque()

    # ------------------------------------------------------------------
    def tick(self) -> None:
        state = self.state
        config = state.config
        if (self.fetch_halted or state.cycle < self.fetch_resume_cycle
                or len(self.fetch_queue) >= config.fetch_queue_size):
            return
        first = state.program.at(self.fetch_pc)
        if first is None:
            self.fetch_halted = True
            return
        access = state.mem.ifetch(self.fetch_pc, state.cycle)
        ready_cycle = (state.cycle + config.fetch_stages + config.decode_stages
                       + max(0, access.latency - 1))
        for _ in range(config.fetch_width):
            inst = state.program.at(self.fetch_pc)
            if inst is None:
                self.fetch_halted = True
                break
            state.seq += 1
            dyn = DynInst(state.seq, inst)
            dyn.fetch_cycle = state.cycle
            dyn.call_depth = state.predictor.call_depth
            dyn.map_checkpoint = state.predictor.snapshot()
            prediction = state.predictor.predict(inst)
            dyn.pred_taken = prediction.taken
            dyn.pred_next_pc = prediction.target
            if is_branch(inst.op):
                state.predictions[dyn.seq] = prediction
            state.stats.fetched += 1
            self.fetch_queue.append((dyn, ready_cycle))
            if is_branch(inst.op) and prediction.taken:
                self.fetch_pc = prediction.target
                break
            self.fetch_pc = inst.pc + INST_SIZE

    # ------------------------------------------------------------------
    def flush(self, redirect_pc: int) -> None:
        """Drop all fetched-but-unrenamed work and redirect fetch."""
        state = self.state
        for dyn, _ in self.fetch_queue:
            dyn.squashed = True
            state.predictions.pop(dyn.seq, None)
            state.stats.squashed += 1
        self.fetch_queue.clear()
        self.fetch_pc = redirect_pc
        self.fetch_resume_cycle = state.cycle + 1
        self.fetch_halted = False
