"""The in-order front end: fetch and decode.

:class:`FrontEnd` owns the fetch program counter, the fetch/decode queue and
the interaction with the branch predictor and the instruction-side memory
path.  Fetched instructions are tagged with the cycle at which they become
visible to rename (modelling the 3 fetch + 1 decode stage latency plus any
instruction-cache miss stall).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.core.stages.base import PipelineState
from repro.isa.instruction import DynInst
from repro.isa.program import INST_SIZE


class FrontEnd:
    """Fetch + decode: keeps the rename stage fed with predicted-path work."""

    name = "frontend"

    def __init__(self, state: PipelineState):
        self.state = state
        # Fetch starts at the architectural PC: the program entry for a
        # fresh run, the checkpoint PC when resuming a slice.
        self.fetch_pc = state.arch.pc
        self.fetch_resume_cycle = 0
        self.fetch_halted = False
        #: (DynInst, rename_ready_cycle) pairs in fetch order.
        self.fetch_queue: Deque[Tuple[DynInst, int]] = deque()

    # ------------------------------------------------------------------
    def tick(self) -> None:
        state = self.state
        config = state.config
        cycle = state.cycle
        if (self.fetch_halted or cycle < self.fetch_resume_cycle
                or len(self.fetch_queue) >= config.fetch_queue_size):
            return
        fetch_pc = self.fetch_pc
        program_at = state.program.at
        first = program_at(fetch_pc)
        if first is None:
            self.fetch_halted = True
            return
        access = state.mem.ifetch(fetch_pc, cycle)
        ready_cycle = (cycle + config.fetch_stages + config.decode_stages
                       + max(0, access.latency - 1))
        predictor = state.predictor
        predictions = state.predictions
        fetch_queue = self.fetch_queue
        append = fetch_queue.append
        # The predictor only mutates on control-flow instructions, so one
        # checkpoint (an immutable tuple) is shared by every instruction
        # fetched since the last branch -- including across cycles via the
        # branch-prediction path below invalidating it.
        snap = None
        fetched = 0
        tracer = state.tracer
        for _ in range(config.fetch_width):
            inst = program_at(fetch_pc)
            if inst is None:
                self.fetch_halted = True
                break
            state.seq += 1
            dyn = DynInst(state.seq, inst)
            dyn.fetch_cycle = cycle
            if tracer is not None:
                tracer.on_fetch(dyn, cycle)
            if snap is None:
                snap = predictor.snapshot()
                depth = len(snap[1])
            dyn.call_depth = depth
            dyn.map_checkpoint = snap
            fetched += 1
            fetch_pc = inst.pc + INST_SIZE
            if inst.info.is_branch:
                prediction = predictor.predict(inst)
                snap = None
                dyn.pred_taken = prediction.taken
                dyn.pred_next_pc = prediction.target
                predictions[dyn.seq] = prediction
                append((dyn, ready_cycle))
                if prediction.taken:
                    fetch_pc = prediction.target
                    break
            else:
                # Non-control-flow: the predictor has no side effects and
                # always predicts fall-through, so skip the call entirely.
                dyn.pred_next_pc = fetch_pc
                append((dyn, ready_cycle))
        self.fetch_pc = fetch_pc
        state.stats.fetched += fetched

    # ------------------------------------------------------------------
    def flush(self, redirect_pc: int) -> None:
        """Drop all fetched-but-unrenamed work and redirect fetch."""
        state = self.state
        tracer = state.tracer
        for dyn, _ in self.fetch_queue:
            dyn.squashed = True
            state.predictions.pop(dyn.seq, None)
            state.stats.squashed += 1
            if tracer is not None:
                tracer.on_squash(dyn, state.cycle)
        self.fetch_queue.clear()
        self.fetch_pc = redirect_pc
        self.fetch_resume_cycle = state.cycle + 1
        self.fetch_halted = False
