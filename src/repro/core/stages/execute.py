"""The out-of-order execution engine: schedule, register read, execute,
writeback.

:class:`IssueExecute` owns the wakeup and completion event queues, selects
ready instructions from the reservation stations, models execution and
memory-access latencies, and resolves branches, indirect jumps and stores as
their results become available.

The per-instruction work reads the structure-of-arrays
:class:`~repro.core.window.Window` (dispatch kind, source physical
registers, the per-cycle load-issue probe) and dispatches ALU evaluation
through the per-opcode handlers precomputed on ``OpInfo`` -- the inner loop
performs no enum hashing and builds no intermediate operand lists.
"""

from __future__ import annotations

from heapq import heappush
from typing import Dict, List

from repro.core import kernel
from repro.core.diva import SimulationError
from repro.core.stages.base import PipelineState, RecoveryController
from repro.isa import semantics
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.isa.program import INST_SIZE

_MASK64 = semantics.MASK64


class IssueExecute:
    """Scheduler + functional units + load/store pipeline."""

    name = "execute"

    def __init__(self, state: PipelineState, recovery: RecoveryController):
        self.state = state
        self.recovery = recovery
        self.wakeup_events: Dict[int, List] = {}
        self.complete_events: Dict[int, List[DynInst]] = {}
        #: Min-heap of cycles with scheduled events (lazily pruned); the
        #: quiescent fast path in the engine uses it to jump the clock to
        #: the next cycle with work.
        self.event_cycles: List[int] = []
        # Optional compiled writeback drain (REPRO_KERNEL=compiled); a
        # bit-identical reimplementation of the Python loop in writeback.
        self._kernel_drain = None
        backend, module = kernel.select_backend()
        if backend == "compiled":
            self._kernel_drain = module.drain_wakeups

    # ==================================================================
    # writeback: wakeups and completions scheduled in earlier cycles
    # ==================================================================
    def writeback(self) -> None:
        state = self.state
        cycle = state.cycle
        wakeups = self.wakeup_events.pop(cycle, None)
        if wakeups:
            if self._kernel_drain is not None:
                prf = state.prf
                self._kernel_drain(wakeups, prf.values, prf.ready,
                                   prf.on_ready)
            else:
                set_value = state.prf.set_value
                for dyn, value in wakeups:
                    if dyn.squashed or dyn.dest_preg is None:
                        continue
                    set_value(dyn.dest_preg, value)
        completions = self.complete_events.pop(cycle, None)
        if completions:
            for dyn in completions:
                if dyn.squashed:
                    continue
                self._complete(dyn)

    def _complete(self, dyn: DynInst) -> None:
        dyn.completed = True
        dyn.executed = True
        dyn.complete_cycle = self.state.cycle
        tracer = self.state.tracer
        if tracer is not None:
            tracer.on_complete(dyn, self.state.cycle)
        cls = dyn.cls
        if cls is OpClass.COND_BRANCH:
            self._resolve_branch(dyn)
        elif cls is OpClass.STORE:
            self._resolve_store(dyn)
        elif dyn.info.is_indirect_ctl:
            self._resolve_indirect(dyn)

    # ------------------------------------------------------------------
    def _resolve_branch(self, dyn: DynInst) -> None:
        """Resolution of an executed (non-integrated) conditional branch."""
        state = self.state
        taken = dyn.branch_taken
        target = dyn.next_pc
        state.integration.record_branch_outcome(dyn, taken)
        prediction = state.predictions.get(dyn.seq)
        if prediction is None:
            return
        mispredicted = state.predictor.resolve(dyn.inst, prediction, taken,
                                               target)
        if mispredicted:
            dyn.branch_mispredicted = True
            self.recovery.squash_younger(dyn, redirect_pc=target)

    def _resolve_indirect(self, dyn: DynInst) -> None:
        state = self.state
        target = dyn.next_pc
        prediction = state.predictions.get(dyn.seq)
        if prediction is None:
            return
        mispredicted = state.predictor.resolve(dyn.inst, prediction, True,
                                               target)
        if mispredicted:
            dyn.branch_mispredicted = True
            self.recovery.squash_younger(dyn, redirect_pc=target)

    def _resolve_store(self, dyn: DynInst) -> None:
        state = self.state
        violations = state.lsq.resolve_store(dyn, dyn.eff_addr)
        if not violations:
            return
        victim = violations[0]
        victim.mem_mispeculated = True
        state.stats.memory_order_violations += 1
        state.cht.train(victim.inst.pc)
        self.recovery.squash_from(victim, redirect_pc=victim.pc)

    # ==================================================================
    # issue + execute
    # ==================================================================
    def tick(self) -> None:
        selected = self.state.rs.select(self._operands_ready,
                                        self._load_can_issue)
        if selected:
            execute = self._execute
            for dyn in selected:
                execute(dyn)

    def flush(self, redirect_pc: int) -> None:
        """Scheduled events survive a squash; squashed producers are
        filtered when their events fire."""

    def _operands_ready(self, dyn: DynInst) -> bool:
        ready = self.state.prf.ready
        for preg in dyn.src_pregs:
            if not ready[preg]:
                return False
        return True

    def _load_can_issue(self, dyn: DynInst) -> bool:
        state = self.state
        win = state.window
        seq = dyn.seq
        slot = seq & win.mask
        base = state.prf.values[win.src1[slot]]
        addr = (int(base) + dyn.inst.imm) & _MASK64
        if state.cht.predicts_collision(dyn.pc):
            # The hit statistic counts dynamic loads whose issue consulted a
            # collision prediction -- once per load, not once per re-poll of
            # a stalled load.
            if not win.cht_counted[slot]:
                win.cht_counted[slot] = True
                state.cht.record_hit()
            if state.lsq.older_stores_unresolved(dyn):
                return False
        store, data_ready = state.lsq.forward_from(dyn, addr)
        # Cache the probe for _execute_load: nothing between select and
        # execute within a cycle changes the store image the LSQ exposes.
        win.probe_cycle[slot] = state.cycle
        win.probe_addr[slot] = addr
        win.probe_store[slot] = store
        if store is not None and not data_ready:
            return False
        return True

    def _execute(self, dyn: DynInst) -> None:
        state = self.state
        config = state.config
        dyn.issued = True
        cycle = state.cycle
        dyn.issue_cycle = cycle
        state.stats.issued += 1
        tracer = state.tracer
        if tracer is not None:
            tracer.on_issue(dyn, cycle)
        inst = dyn.inst
        info = dyn.info
        win = state.window
        slot = dyn.seq & win.mask
        kind = win.kind[slot]
        prf_values = state.prf.values
        nsrc = win.nsrc[slot]
        a = prf_values[win.src1[slot]] if nsrc else 0
        regread = config.regread_stages
        wb = config.writeback_stages

        if kind == 0:                               # ALU / FP
            b = prf_values[win.src2[slot]] if nsrc > 1 else 0
            if info.eval_is_fp:
                result = info.eval_fn(a, b, inst.imm)
            else:
                # Wrong-path execution can feed an integer operation a
                # register that last held a float; truncate (the result is
                # discarded at the squash anyway).
                if type(a) is float:
                    a = int(a)
                if type(b) is float:
                    b = int(b)
                result = info.eval_fn(a, b, inst.imm)
            dyn.result = result
            latency = info.latency
            self._schedule_wakeup(dyn, latency, result)
            self._schedule_complete(dyn, regread + latency + wb)
        elif kind == 1:                             # conditional branch
            taken = info.branch_fn(semantics.to_signed(int(a)))
            dyn.branch_taken = taken
            dyn.next_pc = inst.target if taken else inst.pc + INST_SIZE
            self._schedule_complete(dyn, regread + 1 + wb)
        elif kind == 2:                             # indirect control
            target = int(a) & _MASK64
            dyn.next_pc = target
            if dyn.cls is OpClass.CALL_INDIRECT and dyn.dest_preg is not None:
                link = inst.pc + INST_SIZE
                dyn.result = link
                self._schedule_wakeup(dyn, 1, link)
            self._schedule_complete(dyn, regread + 1 + wb)
        elif kind == 3:                             # load
            self._execute_load(dyn, a, slot)
        elif kind == 4:                             # store
            b = prf_values[win.src2[slot]] if nsrc > 1 else 0
            addr = (int(b) + inst.imm) & _MASK64
            dyn.eff_addr = addr
            dyn.store_value = (int(a) & semantics.MASK32
                               if info.is_stl else a)
            state.stats.executed_stores += 1
            agen = config.memsys.address_generation_latency
            self._schedule_complete(dyn, regread + agen + wb)
        else:  # pragma: no cover - such classes never enter the RS
            raise SimulationError(f"unexpected issue of {dyn}")

    def _execute_load(self, dyn: DynInst, base, slot: int) -> None:
        state = self.state
        config = state.config
        inst = dyn.inst
        win = state.window
        agen = config.memsys.address_generation_latency
        # Reuse the issue-check probe computed by _load_can_issue this
        # cycle: the LSQ store image cannot change between select and
        # execute (stores resolve at completion, in writeback).
        if win.probe_cycle[slot] == state.cycle:
            addr = win.probe_addr[slot]
            store = win.probe_store[slot]
        else:
            addr = (int(base) + inst.imm) & _MASK64
            store, _ = state.lsq.forward_from(dyn, addr)
        dyn.eff_addr = addr
        state.lsq.record_load(dyn, addr)
        state.stats.executed_loads += 1
        if store is not None:
            latency = agen + config.memsys.store_forward_latency
            value = store.store_value
        else:
            access = state.mem.load(addr, state.cycle + agen)
            latency = agen + access.latency
            value = state.arch.memory.read(addr)
        if dyn.info.is_ldl:
            value = semantics.to_unsigned(
                semantics.to_signed(int(value) & semantics.MASK32, 32))
        dyn.result = value
        self._schedule_wakeup(dyn, latency, value)
        self._schedule_complete(dyn, config.regread_stages + latency
                                + config.writeback_stages)

    def _schedule_wakeup(self, dyn: DynInst, delay: int, value) -> None:
        cycle = self.state.cycle + (delay if delay > 1 else 1)
        bucket = self.wakeup_events.get(cycle)
        if bucket is None:
            self.wakeup_events[cycle] = [(dyn, value)]
            if cycle not in self.complete_events:
                heappush(self.event_cycles, cycle)
        else:
            bucket.append((dyn, value))

    def _schedule_complete(self, dyn: DynInst, delay: int) -> None:
        cycle = self.state.cycle + (delay if delay > 1 else 1)
        bucket = self.complete_events.get(cycle)
        if bucket is None:
            self.complete_events[cycle] = [dyn]
            if cycle not in self.wakeup_events:
                heappush(self.event_cycles, cycle)
        else:
            bucket.append(dyn)