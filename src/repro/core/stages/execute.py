"""The out-of-order execution engine: schedule, register read, execute,
writeback.

:class:`IssueExecute` owns the wakeup and completion event queues, selects
ready instructions from the reservation stations, models execution and
memory-access latencies, and resolves branches, indirect jumps and stores as
their results become available.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.core.diva import SimulationError
from repro.core.stages.base import PipelineState, RecoveryController
from repro.isa import semantics
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.isa.program import INST_SIZE


class IssueExecute:
    """Scheduler + functional units + load/store pipeline."""

    name = "execute"

    def __init__(self, state: PipelineState, recovery: RecoveryController):
        self.state = state
        self.recovery = recovery
        self.wakeup_events: Dict[int, List] = defaultdict(list)
        self.complete_events: Dict[int, List[DynInst]] = defaultdict(list)

    # ==================================================================
    # writeback: wakeups and completions scheduled in earlier cycles
    # ==================================================================
    def writeback(self) -> None:
        state = self.state
        wakeups = self.wakeup_events.pop(state.cycle, None)
        if wakeups:
            set_value = state.prf.set_value
            for dyn, value in wakeups:
                if dyn.squashed or dyn.dest_preg is None:
                    continue
                set_value(dyn.dest_preg, value)
        completions = self.complete_events.pop(state.cycle, None)
        if completions:
            for dyn in completions:
                if dyn.squashed:
                    continue
                self._complete(dyn)

    def _complete(self, dyn: DynInst) -> None:
        dyn.completed = True
        dyn.executed = True
        dyn.complete_cycle = self.state.cycle
        cls = dyn.cls
        if cls is OpClass.COND_BRANCH:
            self._resolve_branch(dyn)
        elif dyn.info.is_indirect_ctl:
            self._resolve_indirect(dyn)
        elif cls is OpClass.STORE:
            self._resolve_store(dyn)

    # ------------------------------------------------------------------
    def _resolve_branch(self, dyn: DynInst) -> None:
        """Resolution of an executed (non-integrated) conditional branch."""
        state = self.state
        taken = dyn.branch_taken
        target = dyn.next_pc
        state.integration.record_branch_outcome(dyn, taken)
        prediction = state.predictions.get(dyn.seq)
        if prediction is None:
            return
        mispredicted = state.predictor.resolve(dyn.inst, prediction, taken,
                                               target)
        if mispredicted:
            dyn.branch_mispredicted = True
            self.recovery.squash_younger(dyn, redirect_pc=target)

    def _resolve_indirect(self, dyn: DynInst) -> None:
        state = self.state
        target = dyn.next_pc
        prediction = state.predictions.get(dyn.seq)
        if prediction is None:
            return
        mispredicted = state.predictor.resolve(dyn.inst, prediction, True,
                                               target)
        if mispredicted:
            dyn.branch_mispredicted = True
            self.recovery.squash_younger(dyn, redirect_pc=target)

    def _resolve_store(self, dyn: DynInst) -> None:
        state = self.state
        violations = state.lsq.resolve_store(dyn, dyn.eff_addr)
        if not violations:
            return
        victim = violations[0]
        victim.mem_mispeculated = True
        state.stats.memory_order_violations += 1
        state.cht.train(victim.inst.pc)
        self.recovery.squash_from(victim, redirect_pc=victim.pc)

    # ==================================================================
    # issue + execute
    # ==================================================================
    def tick(self) -> None:
        selected = self.state.rs.select(self._operands_ready,
                                        self._load_can_issue)
        for dyn in selected:
            self._execute(dyn)

    def flush(self, redirect_pc: int) -> None:
        """Scheduled events survive a squash; squashed producers are
        filtered when their events fire."""

    def _operands_ready(self, dyn: DynInst) -> bool:
        ready = self.state.prf.ready
        for preg in dyn.src_pregs:
            if not ready[preg]:
                return False
        return True

    def _load_can_issue(self, dyn: DynInst) -> bool:
        state = self.state
        base = state.prf.values[dyn.src_pregs[0]]
        addr = semantics.effective_address(base, dyn.inst.imm)
        if state.cht.predicts_collision(dyn.pc):
            # The hit statistic counts dynamic loads whose issue consulted a
            # collision prediction -- once per load, not once per re-poll of
            # a stalled load.
            if not dyn.cht_counted:
                dyn.cht_counted = True
                state.cht.record_hit()
            if state.lsq.older_stores_unresolved(dyn):
                return False
        store, data_ready = state.lsq.forward_from(dyn, addr)
        # Cache the probe for _execute_load: nothing between select and
        # execute within a cycle changes the store image the LSQ exposes.
        dyn.load_probe = (state.cycle, addr, store)
        if store is not None and not data_ready:
            return False
        return True

    def _execute(self, dyn: DynInst) -> None:
        state = self.state
        config = state.config
        dyn.issued = True
        dyn.issue_cycle = state.cycle
        state.stats.issued += 1
        inst = dyn.inst
        cls = dyn.cls
        prf_values = state.prf.values
        values = [prf_values[p] for p in dyn.src_pregs]
        dyn.src_values = values
        regread = config.regread_stages
        wb = config.writeback_stages

        if dyn.info.is_alu:
            a = values[0] if values else 0
            b = values[1] if len(values) > 1 else 0
            result = semantics.evaluate(inst.op, a, b, inst.imm)
            dyn.result = result
            latency = dyn.info.latency
            self._schedule_wakeup(dyn, latency, result)
            self._schedule_complete(dyn, regread + latency + wb)
        elif cls is OpClass.COND_BRANCH:
            taken = semantics.branch_taken(inst.op, values[0])
            dyn.branch_taken = taken
            dyn.next_pc = inst.target if taken else inst.pc + INST_SIZE
            self._schedule_complete(dyn, regread + 1 + wb)
        elif dyn.info.is_indirect_ctl:
            target = int(values[0]) & semantics.MASK64
            dyn.next_pc = target
            if cls is OpClass.CALL_INDIRECT and dyn.dest_preg is not None:
                link = inst.pc + INST_SIZE
                dyn.result = link
                self._schedule_wakeup(dyn, 1, link)
            self._schedule_complete(dyn, regread + 1 + wb)
        elif cls is OpClass.LOAD:
            self._execute_load(dyn, values)
        elif cls is OpClass.STORE:
            self._execute_store(dyn, values)
        else:  # pragma: no cover - such classes never enter the RS
            raise SimulationError(f"unexpected issue of {dyn}")

    def _execute_load(self, dyn: DynInst, values) -> None:
        state = self.state
        config = state.config
        inst = dyn.inst
        agen = config.memsys.address_generation_latency
        # Reuse the issue-check probe computed by _load_can_issue this
        # cycle: the LSQ store image cannot change between select and
        # execute (stores resolve at completion, in writeback).
        probe = dyn.load_probe
        if probe is not None and probe[0] == state.cycle:
            _, addr, store = probe
        else:
            addr = semantics.effective_address(values[0], inst.imm)
            store, _ = state.lsq.forward_from(dyn, addr)
        dyn.eff_addr = addr
        state.lsq.record_load(dyn, addr)
        state.stats.executed_loads += 1
        if store is not None:
            latency = agen + config.memsys.store_forward_latency
            value = store.store_value
        else:
            access = state.mem.load(addr, state.cycle + agen)
            latency = agen + access.latency
            value = state.arch.memory.read(addr)
        value = semantics.narrow_load_value(inst.op, value)
        dyn.result = value
        self._schedule_wakeup(dyn, latency, value)
        self._schedule_complete(dyn, config.regread_stages + latency
                                + config.writeback_stages)

    def _execute_store(self, dyn: DynInst, values) -> None:
        state = self.state
        config = state.config
        inst = dyn.inst
        data, base = values[0], values[1]
        addr = semantics.effective_address(base, inst.imm)
        dyn.eff_addr = addr
        dyn.store_value = semantics.narrow_store_value(inst.op, data)
        state.stats.executed_stores += 1
        agen = config.memsys.address_generation_latency
        self._schedule_complete(dyn, config.regread_stages + agen
                                + config.writeback_stages)

    def _schedule_wakeup(self, dyn: DynInst, delay: int, value) -> None:
        self.wakeup_events[self.state.cycle + max(1, delay)].append(
            (dyn, value))

    def _schedule_complete(self, dyn: DynInst, delay: int) -> None:
        self.complete_events[self.state.cycle + max(1, delay)].append(dyn)
