"""DIVA-style in-order checker.

Immediately before retirement every instruction is re-executed, in program
order, against precise architectural state.  Any disagreement between the
value the out-of-order engine produced (or the value an integrating
instruction *reused*) and the architecturally correct value is a fault; for
integrating instructions this is exactly how mis-integrations are detected
(paper Section 2.1).  The checker also *is* the commit point: its
architectural state is the reference state of the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.functional.executor import StepResult, execute_step
from repro.functional.state import ArchState
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


class SimulationError(RuntimeError):
    """An internal inconsistency that is not a modelled fault (a bug)."""


@dataclass
class DivaFault:
    """A value/control disagreement detected by the checker."""

    dyn: DynInst
    kind: str                      # "value", "branch", "store"
    correct_value: Optional[object] = None
    observed_value: Optional[object] = None
    correct_next_pc: Optional[int] = None


class DivaChecker:
    """Re-executes retiring instructions against architectural state."""

    def __init__(self, arch: ArchState):
        self.arch = arch
        self.checked = 0
        self.faults = 0

    def check_and_commit(self, dyn: DynInst, observed_value,
                         observed_taken: Optional[bool],
                         observed_next_pc: Optional[int]
                         ) -> tuple:
        """Re-execute ``dyn`` on architectural state and compare.

        Returns ``(step_result, fault_or_None)``.  The architectural state is
        always advanced with the *correct* values, so recovery after a fault
        simply re-fetches from ``arch.pc``.
        """
        inst = dyn.inst
        if self.arch.pc != inst.pc:
            raise SimulationError(
                f"retirement stream diverged: architectural PC "
                f"{self.arch.pc:#x} but retiring {inst.pc:#x} (seq {dyn.seq})")
        self.checked += 1
        step = execute_step(self.arch, inst)
        fault = self._compare(dyn, step, observed_value, observed_taken,
                              observed_next_pc)
        if fault is not None:
            self.faults += 1
        return step, fault

    # ------------------------------------------------------------------
    def _compare(self, dyn: DynInst, step: StepResult, observed_value,
                 observed_taken: Optional[bool],
                 observed_next_pc: Optional[int]) -> Optional[DivaFault]:
        inst = dyn.inst
        info = inst.info
        cls = info.cls
        if cls is OpClass.SYSCALL or cls is OpClass.NOP:
            return None
        if info.is_store:
            if observed_value is not None and step.store_value != observed_value:
                return DivaFault(dyn, "store", step.store_value,
                                 observed_value, step.next_pc)
            return None
        if info.is_cond_branch:
            if observed_taken is not None and observed_taken != step.taken:
                return DivaFault(dyn, "branch", step.taken, observed_taken,
                                 step.next_pc)
            return None
        if cls is OpClass.DIRECT_JUMP:
            return None
        if info.is_indirect_ctl:
            if observed_next_pc is not None and observed_next_pc != step.next_pc:
                return DivaFault(dyn, "branch", None, None, step.next_pc)
            return None
        # Register-producing instruction (ALU, FP, load, direct call link).
        if inst.dest is None:
            return None
        if observed_value is None or step.dest_value != observed_value:
            return DivaFault(dyn, "value", step.dest_value, observed_value,
                             step.next_pc)
        return None
