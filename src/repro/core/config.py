"""Machine configuration (paper Section 3.1 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import ClassVar, FrozenSet, Optional

from repro.frontend.branch_predictor import BranchPredictorConfig
from repro.integration.config import IntegrationConfig
from repro.memsys.hierarchy import MemSysConfig
from repro.serialization import SerializableConfig


@dataclass(frozen=True)
class IssuePortConfig(SerializableConfig):
    """Per-cycle issue-port limits of the execution core.

    The paper's baseline issues up to four instructions per cycle with at
    most two simple integer operations, two floating-point or
    complex-integer operations, one load and one store.
    """

    issue_width: int = 4
    simple_int: int = 2
    complex_fp: int = 2
    loads: int = 1
    stores: int = 1


@dataclass(frozen=True)
class MachineConfig(SerializableConfig):
    """Every structural parameter of the simulated processor.

    Canonical serialization (``to_dict``/``from_dict``) and a stable
    ``fingerprint()`` hash covering every nested field come from
    :class:`~repro.serialization.SerializableConfig`; the fingerprint is the
    cache identity of a configuration throughout the experiment engine.
    """

    # Superscalar widths.
    fetch_width: int = 4
    rename_width: int = 4
    retire_width: int = 4
    ports: IssuePortConfig = IssuePortConfig()

    # Window sizes.
    rob_size: int = 128
    lsq_size: int = 64
    rs_entries: int = 40

    # Pipeline depths (13 stages in total).
    fetch_stages: int = 3
    decode_stages: int = 1
    rename_stages: int = 1
    schedule_stages: int = 2
    regread_stages: int = 2
    writeback_stages: int = 1
    diva_stages: int = 1
    retire_stages: int = 1

    # Front-end buffering.
    fetch_queue_size: int = 16

    # Memory-disambiguation hardware.
    collision_history_entries: int = 256

    # Sub-configurations.
    branch_predictor: BranchPredictorConfig = BranchPredictorConfig()
    memsys: MemSysConfig = MemSysConfig()
    integration: IntegrationConfig = IntegrationConfig()

    # Simulation limits.
    max_cycles: int = 5_000_000
    deadlock_cycles: int = 50_000

    # Machine variant: names a registered :class:`~repro.core.builder.
    # MachineBuilder` subclass (see :mod:`repro.variants`) that decides how
    # the substrates and stages are assembled.  The field participates in
    # ``fingerprint()`` -- two variants of the same structural configuration
    # can never share a cache entry -- but is elided from the canonical JSON
    # while it holds the default, so every pre-variant cache key (always the
    # baseline machine) still resolves.
    variant: str = "baseline"

    #: Fields omitted from canonical serialization at their default value.
    _ELIDE_DEFAULT: ClassVar[FrozenSet[str]] = frozenset({"variant"})

    # ------------------------------------------------------------------
    @property
    def frontend_depth(self) -> int:
        """Stages from fetch up to and including rename (what an integrating
        instruction still has to traverse)."""
        return self.fetch_stages + self.decode_stages + self.rename_stages

    @property
    def execution_depth(self) -> int:
        """Stages an executing instruction spends in the out-of-order engine
        (schedule + register read + execute)."""
        return self.schedule_stages + self.regread_stages + 1

    @property
    def pipeline_depth(self) -> int:
        return (self.frontend_depth + self.execution_depth
                + self.writeback_stages + self.diva_stages
                + self.retire_stages)

    def with_integration(self, integration: IntegrationConfig
                         ) -> "MachineConfig":
        return replace(self, integration=integration)

    def with_variant(self, variant: str) -> "MachineConfig":
        """The same structural configuration on another machine variant.

        The name is validated when the machine is built (or threaded through
        the experiment engine), not here, so the config layer stays free of
        a dependency on the variant registry.
        """
        return replace(self, variant=variant)

    # ------------------------------------------------------------------
    # reduced-complexity presets for Figure 7
    # ------------------------------------------------------------------
    def reduced_rs(self, rs_entries: int = 20) -> "MachineConfig":
        """The paper's RS configuration: half the reservation stations."""
        return replace(self, rs_entries=rs_entries)

    def reduced_issue_width(self) -> "MachineConfig":
        """The paper's IW configuration: 3-way issue with a single combined
        load/store port, front end still 4-wide."""
        ports = IssuePortConfig(issue_width=3, simple_int=2, complex_fp=1,
                                loads=1, stores=1)
        return replace(self, ports=ports, _combined_ldst_port=True)

    def reduced_both(self, rs_entries: int = 20) -> "MachineConfig":
        """The paper's IW+RS configuration."""
        return self.reduced_issue_width().reduced_rs(rs_entries)

    # Whether the single load port and single store port are actually one
    # shared load/store port (used by the IW configuration).
    _combined_ldst_port: bool = False

    @property
    def combined_ldst_port(self) -> bool:
        return self._combined_ldst_port
