/* Compiled inner loops for the cycle-level engine (REPRO_KERNEL=compiled).
 *
 * The pure-Python implementations in repro/core/scheduler.py are the
 * reference semantics; this module reimplements the two per-cycle loops that
 * dominate scheduler time -- issue selection over the ready pool and the
 * wakeup walk over a register's watcher list -- against the same
 * structure-of-arrays Window state.  Behaviour must stay bit-identical:
 * every guard below mirrors the Python code line for line, including the
 * order of the load-issue side-effect check relative to the port-limit
 * checks.
 *
 * Built opportunistically by setup.py (Extension(optional=True)); the
 * loader in repro/core/kernel.py verifies the layout constants baked in
 * here against repro/core/window.py before activating the backend and
 * falls back to pure Python on any mismatch.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdlib.h>

/* Mirrors of repro.core.window constants (checked by kernel.py). */
#define SEQ_BITS 48
#define SEQ_MASK (((long long)1 << SEQ_BITS) - 1)
#define PORT_LOAD 2
/* Mirror of repro.rename.physical.ZERO_PREG (checked by kernel.py). */
#define ZERO_PREG 0

/* Interned attribute names used by drain_wakeups (set in module init). */
static PyObject *str_squashed;
static PyObject *str_dest_preg;

static int
cmp_longlong(const void *a, const void *b)
{
    const long long x = *(const long long *)a;
    const long long y = *(const long long *)b;
    return (x > y) - (x < y);
}

/* select_ready(ready, waiting, sort_key, port, mask, limits, width,
 *              combined, load_can_issue) -> list[DynInst]
 *
 * The PRF-bound fast path of ReservationStations.select: sort the
 * precomputed (priority << SEQ_BITS) | seq keys of the ready pool, walk
 * them oldest-highest-priority first applying the issue-width, load-issue
 * and per-port limits, and remove the chosen instructions from both pools.
 */
static PyObject *
kernel_select_ready(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *ready, *waiting, *sort_key, *port, *limits_obj, *load_can_issue;
    long long mask;
    long width;
    int combined;

    if (!PyArg_ParseTuple(args, "O!O!O!O!LO!liO:select_ready",
                          &PyDict_Type, &ready, &PyDict_Type, &waiting,
                          &PyList_Type, &sort_key, &PyList_Type, &port,
                          &mask, &PyList_Type, &limits_obj, &width,
                          &combined, &load_can_issue))
        return NULL;

    PyObject *selected = PyList_New(0);
    if (selected == NULL)
        return NULL;
    const Py_ssize_t n = PyDict_Size(ready);
    if (n == 0)
        return selected;

    long long *keys = PyMem_Malloc((size_t)n * sizeof(long long));
    long long *chosen = PyMem_Malloc((size_t)n * sizeof(long long));
    if (keys == NULL || chosen == NULL) {
        PyMem_Free(keys);
        PyMem_Free(chosen);
        Py_DECREF(selected);
        return PyErr_NoMemory();
    }

    Py_ssize_t pos = 0, i = 0;
    PyObject *key_obj, *value_obj;
    while (PyDict_Next(ready, &pos, &key_obj, &value_obj) && i < n) {
        const long long seq = PyLong_AsLongLong(key_obj);
        if (seq == -1 && PyErr_Occurred())
            goto fail;
        keys[i] = PyLong_AsLongLong(
            PyList_GET_ITEM(sort_key, (Py_ssize_t)(seq & mask)));
        if (keys[i] == -1 && PyErr_Occurred())
            goto fail;
        i++;
    }
    qsort(keys, (size_t)i, sizeof(long long), cmp_longlong);

    long limits[4], counts[4] = {0, 0, 0, 0};
    for (int p = 0; p < 4; p++) {
        limits[p] = PyLong_AsLong(PyList_GET_ITEM(limits_obj, p));
        if (limits[p] == -1 && PyErr_Occurred())
            goto fail;
    }

    Py_ssize_t n_chosen = 0;
    const Py_ssize_t total = i;
    for (i = 0; i < total; i++) {
        if (n_chosen >= width)
            break;
        const long long seq = keys[i] & SEQ_MASK;
        const long code = PyLong_AsLong(
            PyList_GET_ITEM(port, (Py_ssize_t)(seq & mask)));
        if (code == -1 && PyErr_Occurred())
            goto fail;
        PyObject *seq_boxed = PyLong_FromLongLong(seq);
        if (seq_boxed == NULL)
            goto fail;
        PyObject *dyn = PyDict_GetItemWithError(waiting, seq_boxed);
        if (dyn == NULL) {
            Py_DECREF(seq_boxed);
            if (!PyErr_Occurred())
                PyErr_Format(PyExc_KeyError,
                             "ready seq %lld missing from waiting pool", seq);
            goto fail;
        }
        Py_DECREF(seq_boxed);
        /* Same check order as the Python loop: the load-issue probe runs
         * (and records its collision-history side effects) before the
         * combined-port and per-port limit tests. */
        if (code == PORT_LOAD) {
            PyObject *ok = PyObject_CallOneArg(load_can_issue, dyn);
            if (ok == NULL)
                goto fail;
            const int truth = PyObject_IsTrue(ok);
            Py_DECREF(ok);
            if (truth < 0)
                goto fail;
            if (!truth)
                continue;
        }
        if (combined && code >= PORT_LOAD && counts[2] + counts[3] >= 1)
            continue;
        if (counts[code] >= limits[code])
            continue;
        counts[code]++;
        if (PyList_Append(selected, dyn) < 0)
            goto fail;
        chosen[n_chosen++] = seq;
    }

    for (i = 0; i < n_chosen; i++) {
        PyObject *seq_boxed = PyLong_FromLongLong(chosen[i]);
        if (seq_boxed == NULL)
            goto fail;
        if (PyDict_DelItem(waiting, seq_boxed) < 0 ||
            PyDict_DelItem(ready, seq_boxed) < 0) {
            Py_DECREF(seq_boxed);
            goto fail;
        }
        Py_DECREF(seq_boxed);
    }

    PyMem_Free(keys);
    PyMem_Free(chosen);
    return selected;

fail:
    PyMem_Free(keys);
    PyMem_Free(chosen);
    Py_DECREF(selected);
    return NULL;
}

/* wakeup(watchers, waiting, ready, pending, mask) -> None
 *
 * One physical register became ready: decrement the pending-source count
 * of every live watcher and promote the ones that reached zero into the
 * ready pool.  Mirrors ReservationStations.wakeup after the watcher-list
 * pop (which stays in Python).
 */
static PyObject *
kernel_wakeup(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *watchers, *waiting, *ready, *pending;
    long long mask;

    if (!PyArg_ParseTuple(args, "O!O!O!O!L:wakeup",
                          &PyList_Type, &watchers, &PyDict_Type, &waiting,
                          &PyDict_Type, &ready, &PyList_Type, &pending,
                          &mask))
        return NULL;

    const Py_ssize_t n = PyList_GET_SIZE(watchers);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *seq_obj = PyList_GET_ITEM(watchers, i);
        PyObject *dyn = PyDict_GetItemWithError(waiting, seq_obj);
        if (dyn == NULL) {
            if (PyErr_Occurred())
                return NULL;
            continue;  /* already issued or squashed */
        }
        const long long seq = PyLong_AsLongLong(seq_obj);
        if (seq == -1 && PyErr_Occurred())
            return NULL;
        const Py_ssize_t slot = (Py_ssize_t)(seq & mask);
        const long left = PyLong_AsLong(PyList_GET_ITEM(pending, slot)) - 1;
        if (left == -2 && PyErr_Occurred())
            return NULL;
        PyObject *left_obj = PyLong_FromLong(left);
        if (left_obj == NULL)
            return NULL;
        PyList_SetItem(pending, slot, left_obj);  /* steals left_obj */
        if (PyObject_SetAttrString(dyn, "rs_pending", left_obj) < 0)
            return NULL;
        if (left == 0 && PyDict_SetItem(ready, seq_obj, dyn) < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

/* drain_wakeups(wakeups, values, ready, on_ready) -> None
 *
 * The writeback wakeup drain of IssueExecute.writeback: for each scheduled
 * (dyn, value) pair, skip squashed/destination-less producers and perform
 * PhysicalRegisterFile.set_value -- store the value, and on the
 * not-ready -> ready edge fire the on_ready hook (the scheduler wakeup).
 * The zero register is never written (ZERO_PREG mirror checked by
 * kernel.py).  ``on_ready`` may be None (no scheduler bound).
 */
static PyObject *
kernel_drain_wakeups(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *wakeups, *values, *ready, *on_ready;

    if (!PyArg_ParseTuple(args, "O!O!O!O:drain_wakeups",
                          &PyList_Type, &wakeups, &PyList_Type, &values,
                          &PyList_Type, &ready, &on_ready))
        return NULL;

    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(wakeups); i++) {
        PyObject *pair = PyList_GET_ITEM(wakeups, i);
        if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2) {
            PyErr_SetString(PyExc_TypeError,
                            "wakeup entries must be (dyn, value) tuples");
            return NULL;
        }
        PyObject *dyn = PyTuple_GET_ITEM(pair, 0);
        PyObject *value = PyTuple_GET_ITEM(pair, 1);

        PyObject *squashed = PyObject_GetAttr(dyn, str_squashed);
        if (squashed == NULL)
            return NULL;
        const int is_squashed = PyObject_IsTrue(squashed);
        Py_DECREF(squashed);
        if (is_squashed < 0)
            return NULL;
        if (is_squashed)
            continue;

        PyObject *preg_obj = PyObject_GetAttr(dyn, str_dest_preg);
        if (preg_obj == NULL)
            return NULL;
        if (preg_obj == Py_None) {
            Py_DECREF(preg_obj);
            continue;
        }
        const long long preg = PyLong_AsLongLong(preg_obj);
        Py_DECREF(preg_obj);
        if (preg == -1 && PyErr_Occurred())
            return NULL;
        if (preg == ZERO_PREG)
            continue;
        if (preg < 0 || preg >= PyList_GET_SIZE(values)) {
            PyErr_Format(PyExc_IndexError,
                         "dest_preg %lld out of range", preg);
            return NULL;
        }
        /* values[preg] = value (always stored, ready or not). */
        Py_INCREF(value);
        PyList_SetItem(values, (Py_ssize_t)preg, value);  /* steals value */
        const int was_ready = PyObject_IsTrue(
            PyList_GET_ITEM(ready, (Py_ssize_t)preg));
        if (was_ready < 0)
            return NULL;
        if (!was_ready) {
            Py_INCREF(Py_True);
            PyList_SetItem(ready, (Py_ssize_t)preg, Py_True);
            if (on_ready != Py_None) {
                PyObject *preg_boxed = PyLong_FromLongLong(preg);
                if (preg_boxed == NULL)
                    return NULL;
                PyObject *res = PyObject_CallOneArg(on_ready, preg_boxed);
                Py_DECREF(preg_boxed);
                if (res == NULL)
                    return NULL;
                Py_DECREF(res);
            }
        }
    }
    Py_RETURN_NONE;
}

/* lsq_forward_from(stores_by_addr, by_seq, mem_data_ready, mask, seq,
 *                  aligned) -> (store | None, data_ready)
 *
 * The youngest-older-store probe of LoadStoreQueue.forward_from: bisect the
 * sorted store-seq bucket for the aligned word address; no older store
 * means (None, True), otherwise return the store instruction and its
 * data-readiness flag from the window arrays.
 */
static PyObject *
kernel_lsq_forward_from(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *stores_by_addr, *by_seq, *mem_data_ready;
    long long mask, seq, aligned;

    if (!PyArg_ParseTuple(args, "O!O!O!LLL:lsq_forward_from",
                          &PyDict_Type, &stores_by_addr,
                          &PyDict_Type, &by_seq,
                          &PyList_Type, &mem_data_ready,
                          &mask, &seq, &aligned))
        return NULL;

    PyObject *addr_boxed = PyLong_FromLongLong(aligned);
    if (addr_boxed == NULL)
        return NULL;
    PyObject *stores = PyDict_GetItemWithError(stores_by_addr, addr_boxed);
    Py_DECREF(addr_boxed);
    if (stores == NULL) {
        if (PyErr_Occurred())
            return NULL;
        return Py_BuildValue("(OO)", Py_None, Py_True);
    }
    if (!PyList_Check(stores)) {
        PyErr_SetString(PyExc_TypeError, "store bucket must be a list");
        return NULL;
    }
    const Py_ssize_t n = PyList_GET_SIZE(stores);
    if (n == 0)
        return Py_BuildValue("(OO)", Py_None, Py_True);

    /* bisect_left over the sorted sequence numbers. */
    Py_ssize_t lo = 0, hi = n;
    while (lo < hi) {
        const Py_ssize_t mid = (lo + hi) / 2;
        const long long v = PyLong_AsLongLong(PyList_GET_ITEM(stores, mid));
        if (v == -1 && PyErr_Occurred())
            return NULL;
        if (v < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo == 0)
        return Py_BuildValue("(OO)", Py_None, Py_True);

    PyObject *best_obj = PyList_GET_ITEM(stores, lo - 1);
    const long long best = PyLong_AsLongLong(best_obj);
    if (best == -1 && PyErr_Occurred())
        return NULL;
    PyObject *store = PyDict_GetItemWithError(by_seq, best_obj);
    if (store == NULL) {
        if (!PyErr_Occurred())
            PyErr_Format(PyExc_KeyError,
                         "store seq %lld missing from LSQ", best);
        return NULL;
    }
    PyObject *data_ready = PyList_GET_ITEM(mem_data_ready,
                                           (Py_ssize_t)(best & mask));
    return Py_BuildValue("(OO)", store, data_ready);
}

/* lsq_older_unresolved(unresolved, seq) -> bool
 *
 * LoadStoreQueue.older_stores_unresolved: the sorted unresolved-store list
 * is non-empty and its oldest entry is older than the probing load.
 */
static PyObject *
kernel_lsq_older_unresolved(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *unresolved;
    long long seq;

    if (!PyArg_ParseTuple(args, "O!L:lsq_older_unresolved",
                          &PyList_Type, &unresolved, &seq))
        return NULL;
    if (PyList_GET_SIZE(unresolved) == 0)
        Py_RETURN_FALSE;
    const long long first = PyLong_AsLongLong(PyList_GET_ITEM(unresolved, 0));
    if (first == -1 && PyErr_Occurred())
        return NULL;
    return PyBool_FromLong(first < seq);
}

static PyMethodDef kernel_methods[] = {
    {"select_ready", kernel_select_ready, METH_VARARGS,
     "Port-constrained issue selection over the ready pool."},
    {"wakeup", kernel_wakeup, METH_VARARGS,
     "Promote the watchers of a newly ready physical register."},
    {"drain_wakeups", kernel_drain_wakeups, METH_VARARGS,
     "Writeback drain: apply scheduled register wakeups to the PRF."},
    {"lsq_forward_from", kernel_lsq_forward_from, METH_VARARGS,
     "Youngest older store forwarding probe over the LSQ indices."},
    {"lsq_older_unresolved", kernel_lsq_older_unresolved, METH_VARARGS,
     "Any-older-unresolved-store probe over the sorted seq list."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.core._kernel",
    "Compiled scheduler inner loops (see repro/core/kernel.py).",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    str_squashed = PyUnicode_InternFromString("squashed");
    str_dest_preg = PyUnicode_InternFromString("dest_preg");
    if (str_squashed == NULL || str_dest_preg == NULL)
        return NULL;
    PyObject *mod = PyModule_Create(&kernel_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddIntConstant(mod, "SEQ_BITS", SEQ_BITS) < 0 ||
        PyModule_AddIntConstant(mod, "PORT_LOAD", PORT_LOAD) < 0 ||
        PyModule_AddIntConstant(mod, "ZERO_PREG", ZERO_PREG) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
