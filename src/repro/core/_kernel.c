/* Compiled inner loops for the cycle-level engine (REPRO_KERNEL=compiled).
 *
 * The pure-Python implementations in repro/core/scheduler.py are the
 * reference semantics; this module reimplements the two per-cycle loops that
 * dominate scheduler time -- issue selection over the ready pool and the
 * wakeup walk over a register's watcher list -- against the same
 * structure-of-arrays Window state.  Behaviour must stay bit-identical:
 * every guard below mirrors the Python code line for line, including the
 * order of the load-issue side-effect check relative to the port-limit
 * checks.
 *
 * Built opportunistically by setup.py (Extension(optional=True)); the
 * loader in repro/core/kernel.py verifies the layout constants baked in
 * here against repro/core/window.py before activating the backend and
 * falls back to pure Python on any mismatch.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdlib.h>

/* Mirrors of repro.core.window constants (checked by kernel.py). */
#define SEQ_BITS 48
#define SEQ_MASK (((long long)1 << SEQ_BITS) - 1)
#define PORT_LOAD 2

static int
cmp_longlong(const void *a, const void *b)
{
    const long long x = *(const long long *)a;
    const long long y = *(const long long *)b;
    return (x > y) - (x < y);
}

/* select_ready(ready, waiting, sort_key, port, mask, limits, width,
 *              combined, load_can_issue) -> list[DynInst]
 *
 * The PRF-bound fast path of ReservationStations.select: sort the
 * precomputed (priority << SEQ_BITS) | seq keys of the ready pool, walk
 * them oldest-highest-priority first applying the issue-width, load-issue
 * and per-port limits, and remove the chosen instructions from both pools.
 */
static PyObject *
kernel_select_ready(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *ready, *waiting, *sort_key, *port, *limits_obj, *load_can_issue;
    long long mask;
    long width;
    int combined;

    if (!PyArg_ParseTuple(args, "O!O!O!O!LO!liO:select_ready",
                          &PyDict_Type, &ready, &PyDict_Type, &waiting,
                          &PyList_Type, &sort_key, &PyList_Type, &port,
                          &mask, &PyList_Type, &limits_obj, &width,
                          &combined, &load_can_issue))
        return NULL;

    PyObject *selected = PyList_New(0);
    if (selected == NULL)
        return NULL;
    const Py_ssize_t n = PyDict_Size(ready);
    if (n == 0)
        return selected;

    long long *keys = PyMem_Malloc((size_t)n * sizeof(long long));
    long long *chosen = PyMem_Malloc((size_t)n * sizeof(long long));
    if (keys == NULL || chosen == NULL) {
        PyMem_Free(keys);
        PyMem_Free(chosen);
        Py_DECREF(selected);
        return PyErr_NoMemory();
    }

    Py_ssize_t pos = 0, i = 0;
    PyObject *key_obj, *value_obj;
    while (PyDict_Next(ready, &pos, &key_obj, &value_obj) && i < n) {
        const long long seq = PyLong_AsLongLong(key_obj);
        if (seq == -1 && PyErr_Occurred())
            goto fail;
        keys[i] = PyLong_AsLongLong(
            PyList_GET_ITEM(sort_key, (Py_ssize_t)(seq & mask)));
        if (keys[i] == -1 && PyErr_Occurred())
            goto fail;
        i++;
    }
    qsort(keys, (size_t)i, sizeof(long long), cmp_longlong);

    long limits[4], counts[4] = {0, 0, 0, 0};
    for (int p = 0; p < 4; p++) {
        limits[p] = PyLong_AsLong(PyList_GET_ITEM(limits_obj, p));
        if (limits[p] == -1 && PyErr_Occurred())
            goto fail;
    }

    Py_ssize_t n_chosen = 0;
    const Py_ssize_t total = i;
    for (i = 0; i < total; i++) {
        if (n_chosen >= width)
            break;
        const long long seq = keys[i] & SEQ_MASK;
        const long code = PyLong_AsLong(
            PyList_GET_ITEM(port, (Py_ssize_t)(seq & mask)));
        if (code == -1 && PyErr_Occurred())
            goto fail;
        PyObject *seq_boxed = PyLong_FromLongLong(seq);
        if (seq_boxed == NULL)
            goto fail;
        PyObject *dyn = PyDict_GetItemWithError(waiting, seq_boxed);
        if (dyn == NULL) {
            Py_DECREF(seq_boxed);
            if (!PyErr_Occurred())
                PyErr_Format(PyExc_KeyError,
                             "ready seq %lld missing from waiting pool", seq);
            goto fail;
        }
        Py_DECREF(seq_boxed);
        /* Same check order as the Python loop: the load-issue probe runs
         * (and records its collision-history side effects) before the
         * combined-port and per-port limit tests. */
        if (code == PORT_LOAD) {
            PyObject *ok = PyObject_CallOneArg(load_can_issue, dyn);
            if (ok == NULL)
                goto fail;
            const int truth = PyObject_IsTrue(ok);
            Py_DECREF(ok);
            if (truth < 0)
                goto fail;
            if (!truth)
                continue;
        }
        if (combined && code >= PORT_LOAD && counts[2] + counts[3] >= 1)
            continue;
        if (counts[code] >= limits[code])
            continue;
        counts[code]++;
        if (PyList_Append(selected, dyn) < 0)
            goto fail;
        chosen[n_chosen++] = seq;
    }

    for (i = 0; i < n_chosen; i++) {
        PyObject *seq_boxed = PyLong_FromLongLong(chosen[i]);
        if (seq_boxed == NULL)
            goto fail;
        if (PyDict_DelItem(waiting, seq_boxed) < 0 ||
            PyDict_DelItem(ready, seq_boxed) < 0) {
            Py_DECREF(seq_boxed);
            goto fail;
        }
        Py_DECREF(seq_boxed);
    }

    PyMem_Free(keys);
    PyMem_Free(chosen);
    return selected;

fail:
    PyMem_Free(keys);
    PyMem_Free(chosen);
    Py_DECREF(selected);
    return NULL;
}

/* wakeup(watchers, waiting, ready, pending, mask) -> None
 *
 * One physical register became ready: decrement the pending-source count
 * of every live watcher and promote the ones that reached zero into the
 * ready pool.  Mirrors ReservationStations.wakeup after the watcher-list
 * pop (which stays in Python).
 */
static PyObject *
kernel_wakeup(PyObject *Py_UNUSED(self), PyObject *args)
{
    PyObject *watchers, *waiting, *ready, *pending;
    long long mask;

    if (!PyArg_ParseTuple(args, "O!O!O!O!L:wakeup",
                          &PyList_Type, &watchers, &PyDict_Type, &waiting,
                          &PyDict_Type, &ready, &PyList_Type, &pending,
                          &mask))
        return NULL;

    const Py_ssize_t n = PyList_GET_SIZE(watchers);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *seq_obj = PyList_GET_ITEM(watchers, i);
        PyObject *dyn = PyDict_GetItemWithError(waiting, seq_obj);
        if (dyn == NULL) {
            if (PyErr_Occurred())
                return NULL;
            continue;  /* already issued or squashed */
        }
        const long long seq = PyLong_AsLongLong(seq_obj);
        if (seq == -1 && PyErr_Occurred())
            return NULL;
        const Py_ssize_t slot = (Py_ssize_t)(seq & mask);
        const long left = PyLong_AsLong(PyList_GET_ITEM(pending, slot)) - 1;
        if (left == -2 && PyErr_Occurred())
            return NULL;
        PyObject *left_obj = PyLong_FromLong(left);
        if (left_obj == NULL)
            return NULL;
        PyList_SetItem(pending, slot, left_obj);  /* steals left_obj */
        if (PyObject_SetAttrString(dyn, "rs_pending", left_obj) < 0)
            return NULL;
        if (left == 0 && PyDict_SetItem(ready, seq_obj, dyn) < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static PyMethodDef kernel_methods[] = {
    {"select_ready", kernel_select_ready, METH_VARARGS,
     "Port-constrained issue selection over the ready pool."},
    {"wakeup", kernel_wakeup, METH_VARARGS,
     "Promote the watchers of a newly ready physical register."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.core._kernel",
    "Compiled scheduler inner loops (see repro/core/kernel.py).",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__kernel(void)
{
    PyObject *mod = PyModule_Create(&kernel_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddIntConstant(mod, "SEQ_BITS", SEQ_BITS) < 0 ||
        PyModule_AddIntConstant(mod, "PORT_LOAD", PORT_LOAD) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
