"""The out-of-order superscalar timing core.

The core models the paper's 13-stage, 4-way machine: 3 fetch stages, decode,
rename (where integration happens), 2 schedule stages, 2 register-read
stages, execute, writeback, DIVA check, and retire, with a 128-entry
instruction window, a 40-entry reservation-station scheduler, a 64-entry
load/store queue with speculative load issue and a collision history table,
and the memory hierarchy of :mod:`repro.memsys`.

The public entry point is :class:`Processor` (and the convenience function
:func:`simulate`), configured by :class:`MachineConfig`; results come back as
a :class:`SimStats` object carrying every metric the paper's evaluation
reports.
"""

from repro.core.builder import Machine, MachineBuilder
from repro.core.config import MachineConfig
from repro.core.stats import SimStats
from repro.core.rob import ReorderBuffer
from repro.core.scheduler import ReservationStations, IssuePortConfig
from repro.core.lsq import LoadStoreQueue, CollisionHistoryTable
from repro.core.diva import DivaChecker, DivaFault
from repro.core.pipeline import Processor, simulate

__all__ = [
    "Machine",
    "MachineBuilder",
    "MachineConfig",
    "SimStats",
    "ReorderBuffer",
    "ReservationStations",
    "IssuePortConfig",
    "LoadStoreQueue",
    "CollisionHistoryTable",
    "DivaChecker",
    "DivaFault",
    "Processor",
    "simulate",
]
