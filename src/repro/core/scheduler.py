"""Reservation stations and the issue (select) stage.

The scheduler buffers renamed, non-integrated instructions until their
source physical registers are ready and an issue port of the right class is
free.  Selection follows the paper: loads, branches and floating-point
operations have priority, with instruction age as the tie-breaker, subject
to the per-class port limits and the total issue width.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.config import IssuePortConfig
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass

__all__ = ["ReservationStations", "IssuePortConfig"]

_SIMPLE_INT_CLASSES = (
    OpClass.IALU,
    OpClass.COND_BRANCH,
    OpClass.CALL_INDIRECT,
    OpClass.INDIRECT_JUMP,
    OpClass.RETURN,
)
_COMPLEX_FP_CLASSES = (
    OpClass.IMUL,
    OpClass.FP_ADD,
    OpClass.FP_MUL,
    OpClass.FP_DIV,
)
_PRIORITY_CLASSES = (
    OpClass.LOAD,
    OpClass.COND_BRANCH,
    OpClass.FP_ADD,
    OpClass.FP_MUL,
    OpClass.FP_DIV,
    OpClass.CALL_INDIRECT,
    OpClass.INDIRECT_JUMP,
    OpClass.RETURN,
)


def _port_class(dyn: DynInst) -> str:
    cls = dyn.inst.info.cls
    if cls is OpClass.LOAD:
        return "load"
    if cls is OpClass.STORE:
        return "store"
    if cls in _COMPLEX_FP_CLASSES:
        return "complex"
    return "simple"


class ReservationStations:
    """A pool of reservation stations with port-constrained selection."""

    def __init__(self, entries: int, ports: Optional[IssuePortConfig] = None,
                 combined_ldst_port: bool = False):
        self.entries = entries
        self.ports = ports or IssuePortConfig()
        self.combined_ldst_port = combined_ldst_port
        self._waiting: List[DynInst] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._waiting)

    @property
    def occupancy(self) -> int:
        return len(self._waiting)

    def has_space(self, count: int = 1) -> bool:
        return len(self._waiting) + count <= self.entries

    def insert(self, dyn: DynInst) -> None:
        if not self.has_space():
            raise RuntimeError("reservation station overflow")
        self._waiting.append(dyn)

    def squash(self, squashed_seqs: set) -> int:
        """Drop entries belonging to squashed instructions; returns count."""
        before = len(self._waiting)
        self._waiting = [d for d in self._waiting if d.seq not in squashed_seqs]
        return before - len(self._waiting)

    # ------------------------------------------------------------------
    def select(self, operand_ready: Callable[[DynInst], bool],
               load_can_issue: Callable[[DynInst], bool]) -> List[DynInst]:
        """Pick this cycle's issue group.

        ``operand_ready`` tests whether every source physical register of an
        instruction is available; ``load_can_issue`` applies the additional
        memory-ordering constraints (collision history table, unavailable
        forwarding data).  Selected instructions are removed from the pool.
        """
        ports = self.ports
        candidates = [dyn for dyn in self._waiting if operand_ready(dyn)]
        candidates.sort(key=lambda d: (
            0 if d.inst.info.cls in _PRIORITY_CLASSES else 1, d.seq))

        selected: List[DynInst] = []
        counts = {"simple": 0, "complex": 0, "load": 0, "store": 0}
        for dyn in candidates:
            if len(selected) >= ports.issue_width:
                break
            port = _port_class(dyn)
            if port == "load" and not load_can_issue(dyn):
                continue
            if self.combined_ldst_port and port in ("load", "store"):
                if counts["load"] + counts["store"] >= 1:
                    continue
            limit = {"simple": ports.simple_int, "complex": ports.complex_fp,
                     "load": ports.loads, "store": ports.stores}[port]
            if counts[port] >= limit:
                continue
            counts[port] += 1
            selected.append(dyn)

        if selected:
            chosen = {d.seq for d in selected}
            self._waiting = [d for d in self._waiting if d.seq not in chosen]
        return selected
