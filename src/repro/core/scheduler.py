"""Reservation stations and the issue (select) stage.

The scheduler buffers renamed, non-integrated instructions until their
source physical registers are ready and an issue port of the right class is
free.  Selection follows the paper: loads, branches and floating-point
operations have priority, with instruction age as the tie-breaker, subject
to the per-class port limits and the total issue width.

Operand readiness is tracked by events, not by scanning: when the scheduler
is bound to a physical register file (the pipeline wires
``prf.on_ready -> rs.wakeup``), every inserted instruction counts its
not-yet-ready sources once, registers itself as a watcher of those
registers, and moves to the ready pool when the last wakeup arrives.
``select`` then considers only the ready pool instead of re-evaluating the
operands of every waiting instruction every cycle.  Without a bound PRF
(unit tests, external harnesses) ``select`` falls back to probing the
``operand_ready`` callback for each waiting instruction.

Per-entry state lives in the shared structure-of-arrays
:class:`~repro.core.window.Window`: insert writes the issue port/priority
codes, source registers and pending count into flat arrays, wakeup
decrements a list slot, and select sorts precomputed integer keys --
the inner loops never read ``DynInst`` attributes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core import kernel
from repro.core.config import IssuePortConfig
from repro.core.window import PORT_LOAD, SEQ_MASK, Window
from repro.isa.instruction import DynInst

__all__ = ["ReservationStations", "IssuePortConfig"]

# The issue-port classification ("load"/"store"/"complex"/"simple") and the
# selection priority (loads, branches, FP and indirect control first) are
# per-opcode constants precomputed as ``OpInfo.issue_port`` /
# ``OpInfo.port_code`` / ``OpInfo.issue_priority`` (see repro.isa.opcodes)
# and mirrored into ``DynInst.rs_port`` / ``rs_priority`` at insert.


def _age_priority_key(dyn: DynInst):
    return (dyn.rs_priority, dyn.seq)


class ReservationStations:
    """A pool of reservation stations with port-constrained selection."""

    def __init__(self, entries: int, ports: Optional[IssuePortConfig] = None,
                 combined_ldst_port: bool = False, prf=None,
                 window: Optional[Window] = None):
        self.entries = entries
        self.ports = ports or IssuePortConfig()
        self.combined_ldst_port = combined_ldst_port
        self._limits = {"simple": self.ports.simple_int,
                        "complex": self.ports.complex_fp,
                        "load": self.ports.loads,
                        "store": self.ports.stores}
        #: Port limits indexed by ``OpInfo.port_code``.
        self._limits_by_code = [self.ports.simple_int, self.ports.complex_fp,
                                self.ports.loads, self.ports.stores]
        #: Shared (or private, when standalone) structure-of-arrays state.
        self.window = window if window is not None else Window()
        #: seq -> waiting instruction (insertion order = age order).
        self._waiting: Dict[int, DynInst] = {}
        # Event-driven readiness tracking (active when a PRF is bound).
        self._prf = prf
        #: seq -> instruction whose operands are all ready.
        self._ready: Dict[int, DynInst] = {}
        #: preg -> seqs waiting on it (may hold stale watchers for
        #: instructions that already issued or squashed; they are skipped
        #: on wakeup via the ``_waiting`` membership test).
        self._watchers: Dict[int, List[int]] = {}
        # Optional compiled inner loops (REPRO_KERNEL=compiled); both are
        # bit-identical reimplementations of the Python paths below.
        self._kernel_select = self._kernel_wakeup = None
        backend, module = kernel.select_backend()
        if backend == "compiled":
            self._kernel_select = module.select_ready
            self._kernel_wakeup = module.wakeup

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._waiting)

    @property
    def occupancy(self) -> int:
        return len(self._waiting)

    def has_space(self, count: int = 1) -> bool:
        return len(self._waiting) + count <= self.entries

    def insert(self, dyn: DynInst) -> None:
        waiting = self._waiting
        if len(waiting) >= self.entries:
            raise RuntimeError("reservation station overflow")
        seq = dyn.seq
        win = self.window
        if waiting and seq - next(iter(waiting)) > win.mask:
            # Two live entries may never share a ring slot; the window is
            # sized so this cannot happen in practice (see Window docs).
            raise RuntimeError("window ring aliasing in reservation stations")
        waiting[seq] = dyn
        info = dyn.info
        dyn.rs_port = info.issue_port
        dyn.rs_priority = info.issue_priority
        slot = seq & win.mask
        win.kind[slot] = info.kind_code
        win.port[slot] = info.port_code
        win.sort_key[slot] = info.sort_bias | seq
        srcs = dyn.src_pregs
        nsrc = len(srcs)
        win.nsrc[slot] = nsrc
        win.src1[slot] = srcs[0] if nsrc else 0
        win.src2[slot] = srcs[1] if nsrc > 1 else 0
        prf = self._prf
        if prf is None:
            return
        ready = prf.ready
        pending = 0
        watchers = self._watchers
        for preg in srcs:
            if not ready[preg]:
                pending += 1
                bucket = watchers.get(preg)
                if bucket is None:
                    watchers[preg] = [seq]
                else:
                    bucket.append(seq)
        dyn.rs_pending = pending
        win.pending[slot] = pending
        if pending == 0:
            self._ready[seq] = dyn

    def wakeup(self, preg: int) -> None:
        """A physical register became ready: promote its watchers.

        Wired to :attr:`PhysicalRegisterFile.on_ready` by the pipeline.
        Duplicate sources register (and wake) once per occurrence, so the
        pending count stays balanced.
        """
        watchers = self._watchers.pop(preg, None)
        if not watchers:
            return
        if self._kernel_wakeup is not None:
            win = self.window
            self._kernel_wakeup(watchers, self._waiting, self._ready,
                                win.pending, win.mask)
            return
        waiting = self._waiting
        ready = self._ready
        win = self.window
        mask = win.mask
        pending = win.pending
        for seq in watchers:
            dyn = waiting.get(seq)
            if dyn is not None:
                slot = seq & mask
                left = pending[slot] - 1
                pending[slot] = left
                dyn.rs_pending = left
                if left == 0:
                    ready[seq] = dyn

    def squash(self, squashed_seqs: set) -> int:
        """Drop entries belonging to squashed instructions; returns count."""
        doomed = [seq for seq in self._waiting if seq in squashed_seqs]
        for seq in doomed:
            del self._waiting[seq]
            self._ready.pop(seq, None)
        return len(doomed)

    # ------------------------------------------------------------------
    def select(self, operand_ready: Callable[[DynInst], bool],
               load_can_issue: Callable[[DynInst], bool]) -> List[DynInst]:
        """Pick this cycle's issue group.

        ``operand_ready`` tests whether every source physical register of an
        instruction is available (used only on the scan fallback path when
        no PRF is bound); ``load_can_issue`` applies the additional
        memory-ordering constraints (collision history table, unavailable
        forwarding data).  Selected instructions are removed from the pool.
        """
        ports = self.ports
        waiting = self._waiting
        if self._prf is not None:
            ready = self._ready
            if not ready:
                return []
            win = self.window
            if self._kernel_select is not None:
                return self._kernel_select(ready, waiting, win.sort_key,
                                           win.port, win.mask,
                                           self._limits_by_code,
                                           ports.issue_width,
                                           self.combined_ldst_port,
                                           load_can_issue)
            mask = win.mask
            sort_key = win.sort_key
            # Sorting the precomputed ``(priority << SEQ_BITS) | seq`` ints
            # reproduces the (priority, age) order without a key function.
            keys = [sort_key[seq & mask] for seq in ready]
            keys.sort()
            port_arr = win.port
            limits = self._limits_by_code
            counts = [0, 0, 0, 0]
            width = ports.issue_width
            combined = self.combined_ldst_port
            selected: List[DynInst] = []
            for key in keys:
                if len(selected) >= width:
                    break
                seq = key & SEQ_MASK
                code = port_arr[seq & mask]
                if code == PORT_LOAD and not load_can_issue(waiting[seq]):
                    continue
                if combined and code >= PORT_LOAD:
                    if counts[2] + counts[3] >= 1:
                        continue
                if counts[code] >= limits[code]:
                    continue
                counts[code] += 1
                selected.append(waiting[seq])
            for dyn in selected:
                seq = dyn.seq
                del waiting[seq]
                del ready[seq]
            return selected

        # Scan fallback (no PRF bound): probe every waiting instruction.
        candidates = [dyn for dyn in waiting.values() if operand_ready(dyn)]
        candidates.sort(key=_age_priority_key)
        selected = []
        counts_by_port = {"simple": 0, "complex": 0, "load": 0, "store": 0}
        limits_by_port = self._limits
        for dyn in candidates:
            if len(selected) >= ports.issue_width:
                break
            port = dyn.rs_port
            if port == "load" and not load_can_issue(dyn):
                continue
            if self.combined_ldst_port and port in ("load", "store"):
                if counts_by_port["load"] + counts_by_port["store"] >= 1:
                    continue
            if counts_by_port[port] >= limits_by_port[port]:
                continue
            counts_by_port[port] += 1
            selected.append(dyn)
        for dyn in selected:
            del waiting[dyn.seq]
            self._ready.pop(dyn.seq, None)
        return selected
