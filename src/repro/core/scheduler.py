"""Reservation stations and the issue (select) stage.

The scheduler buffers renamed, non-integrated instructions until their
source physical registers are ready and an issue port of the right class is
free.  Selection follows the paper: loads, branches and floating-point
operations have priority, with instruction age as the tie-breaker, subject
to the per-class port limits and the total issue width.

Operand readiness is tracked by events, not by scanning: when the scheduler
is bound to a physical register file (the pipeline wires
``prf.on_ready -> rs.wakeup``), every inserted instruction counts its
not-yet-ready sources once, registers itself as a watcher of those
registers, and moves to the ready pool when the last wakeup arrives.
``select`` then considers only the ready pool instead of re-evaluating the
operands of every waiting instruction every cycle.  Without a bound PRF
(unit tests, external harnesses) ``select`` falls back to probing the
``operand_ready`` callback for each waiting instruction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.config import IssuePortConfig
from repro.isa.instruction import DynInst

__all__ = ["ReservationStations", "IssuePortConfig"]

# The issue-port classification ("load"/"store"/"complex"/"simple") and the
# selection priority (loads, branches, FP and indirect control first) are
# per-opcode constants precomputed as ``OpInfo.issue_port`` /
# ``OpInfo.issue_priority`` (see repro.isa.opcodes) and mirrored into
# ``DynInst.rs_port`` / ``rs_priority`` at insert.


def _age_priority_key(dyn: DynInst):
    return (dyn.rs_priority, dyn.seq)


class ReservationStations:
    """A pool of reservation stations with port-constrained selection."""

    def __init__(self, entries: int, ports: Optional[IssuePortConfig] = None,
                 combined_ldst_port: bool = False, prf=None):
        self.entries = entries
        self.ports = ports or IssuePortConfig()
        self.combined_ldst_port = combined_ldst_port
        self._limits = {"simple": self.ports.simple_int,
                        "complex": self.ports.complex_fp,
                        "load": self.ports.loads,
                        "store": self.ports.stores}
        #: seq -> waiting instruction (insertion order = age order).
        self._waiting: Dict[int, DynInst] = {}
        # Event-driven readiness tracking (active when a PRF is bound).
        self._prf = prf
        #: seq -> instruction whose operands are all ready.
        self._ready: Dict[int, DynInst] = {}
        #: preg -> instructions waiting on it (may hold stale watchers for
        #: instructions that already issued or squashed; they are skipped
        #: on wakeup via the ``_waiting`` membership test).
        self._watchers: Dict[int, List[DynInst]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._waiting)

    @property
    def occupancy(self) -> int:
        return len(self._waiting)

    def has_space(self, count: int = 1) -> bool:
        return len(self._waiting) + count <= self.entries

    def insert(self, dyn: DynInst) -> None:
        if not self.has_space():
            raise RuntimeError("reservation station overflow")
        self._waiting[dyn.seq] = dyn
        info = dyn.info
        dyn.rs_port = info.issue_port
        dyn.rs_priority = info.issue_priority
        prf = self._prf
        if prf is None:
            return
        ready = prf.ready
        pending = 0
        for preg in dyn.src_pregs:
            if not ready[preg]:
                pending += 1
                watchers = self._watchers.get(preg)
                if watchers is None:
                    self._watchers[preg] = [dyn]
                else:
                    watchers.append(dyn)
        dyn.rs_pending = pending
        if pending == 0:
            self._ready[dyn.seq] = dyn

    def wakeup(self, preg: int) -> None:
        """A physical register became ready: promote its watchers.

        Wired to :attr:`PhysicalRegisterFile.on_ready` by the pipeline.
        Duplicate sources register (and wake) once per occurrence, so the
        pending count stays balanced.
        """
        watchers = self._watchers.pop(preg, None)
        if not watchers:
            return
        waiting = self._waiting
        ready = self._ready
        for dyn in watchers:
            if dyn.seq in waiting:
                dyn.rs_pending -= 1
                if dyn.rs_pending == 0:
                    ready[dyn.seq] = dyn

    def squash(self, squashed_seqs: set) -> int:
        """Drop entries belonging to squashed instructions; returns count."""
        doomed = [seq for seq in self._waiting if seq in squashed_seqs]
        for seq in doomed:
            del self._waiting[seq]
            self._ready.pop(seq, None)
        return len(doomed)

    # ------------------------------------------------------------------
    def select(self, operand_ready: Callable[[DynInst], bool],
               load_can_issue: Callable[[DynInst], bool]) -> List[DynInst]:
        """Pick this cycle's issue group.

        ``operand_ready`` tests whether every source physical register of an
        instruction is available (used only on the scan fallback path when
        no PRF is bound); ``load_can_issue`` applies the additional
        memory-ordering constraints (collision history table, unavailable
        forwarding data).  Selected instructions are removed from the pool.
        """
        ports = self.ports
        if self._prf is not None:
            candidates = list(self._ready.values())
        else:
            candidates = [dyn for dyn in self._waiting.values()
                          if operand_ready(dyn)]
        candidates.sort(key=_age_priority_key)

        selected: List[DynInst] = []
        counts = {"simple": 0, "complex": 0, "load": 0, "store": 0}
        limits = self._limits
        for dyn in candidates:
            if len(selected) >= ports.issue_width:
                break
            port = dyn.rs_port
            if port == "load" and not load_can_issue(dyn):
                continue
            if self.combined_ldst_port and port in ("load", "store"):
                if counts["load"] + counts["store"] >= 1:
                    continue
            if counts[port] >= limits[port]:
                continue
            counts[port] += 1
            selected.append(dyn)

        for dyn in selected:
            del self._waiting[dyn.seq]
            self._ready.pop(dyn.seq, None)
        return selected
