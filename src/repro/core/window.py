"""Structure-of-arrays state for the in-flight instruction window.

The per-cycle hot loops (scheduler wakeup/select, LSQ disambiguation, the
execute stage's operand fetch) used to chase :class:`~repro.isa.instruction.
DynInst` attributes for every candidate every cycle.  :class:`Window` keeps
that state in int-keyed parallel arrays instead: one flat list per field,
indexed by ``seq & mask`` (a power-of-two ring).  The common cycle then
touches list slots -- no attribute dictionaries, no per-entry objects, and
selection can sort precomputed integer keys.

Field groups (each structure writes a disjoint set, so one window is safely
shared by the scheduler and the load/store queue):

* scheduler fields (written at RS insert): ``kind`` (execute dispatch code),
  ``port`` (issue-port code), ``sort_key`` (``(priority << SEQ_BITS) | seq``,
  so sorting plain ints reproduces the (priority, age) selection order),
  ``src1``/``src2``/``nsrc``/``dest`` (physical registers), ``pending``
  (not-yet-ready source count);
* LSQ fields (written at LSQ insert/resolve): ``mem_is_store``,
  ``mem_addr`` (word-aligned, ``None`` while unresolved),
  ``mem_data_ready``, ``mem_executed``;
* issue-probe fields (written by the execute stage): ``probe_cycle``/
  ``probe_addr``/``probe_store`` cache the per-cycle load-issue probe.

Ring aliasing: two live instructions may never share ``seq & mask``.  Within
the pipeline the live span is bounded by the reorder buffer, and the builder
sizes the window with a large safety factor; the scheduler and LSQ each
additionally guard their own inserts (see ``ReservationStations.insert``),
so aliasing can only ever surface as a loud error, not silent corruption.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:
    from repro.core.config import MachineConfig

__all__ = ["Window", "SEQ_BITS", "SEQ_MASK",
           "PORT_SIMPLE", "PORT_COMPLEX", "PORT_LOAD", "PORT_STORE",
           "KIND_ALU", "KIND_BRANCH", "KIND_INDIRECT", "KIND_LOAD",
           "KIND_STORE"]

#: Sequence numbers occupy the low bits of ``sort_key``; the selection
#: priority sits above them, so integer comparison orders by (priority, age).
SEQ_BITS = 48
SEQ_MASK = (1 << SEQ_BITS) - 1

# Issue-port codes (indices into the per-port count/limit lists).
PORT_SIMPLE = 0
PORT_COMPLEX = 1
PORT_LOAD = 2
PORT_STORE = 3

# Execute-dispatch codes (what _execute does with a selected instruction).
KIND_ALU = 0
KIND_BRANCH = 1
KIND_INDIRECT = 2
KIND_LOAD = 3
KIND_STORE = 4


def _next_pow2(n: int) -> int:
    cap = 1
    while cap < n:
        cap <<= 1
    return cap


class Window:
    """Int-keyed parallel arrays for in-flight instruction state."""

    __slots__ = (
        "capacity", "mask",
        # scheduler fields
        "kind", "port", "sort_key", "src1", "src2", "nsrc", "dest", "pending",
        # LSQ fields
        "mem_is_store", "mem_addr", "mem_data_ready", "mem_executed",
        # load-issue probe cache (execute stage)
        "probe_cycle", "probe_addr", "probe_store", "cht_counted",
    )

    #: Default capacity for standalone structures (unit tests, harnesses):
    #: far larger than any live span such callers produce.
    STANDALONE_CAPACITY = 4096

    def __init__(self, capacity: int = STANDALONE_CAPACITY) -> None:
        cap = _next_pow2(max(2, capacity))
        self.capacity = cap
        self.mask = cap - 1
        self.kind = [0] * cap
        self.port = [0] * cap
        self.sort_key = [0] * cap
        self.src1 = [0] * cap
        self.src2 = [0] * cap
        self.nsrc = [0] * cap
        self.dest = [0] * cap
        self.pending = [0] * cap
        self.mem_is_store = [False] * cap
        self.mem_addr: List[Optional[int]] = [None] * cap
        self.mem_data_ready = [False] * cap
        self.mem_executed = [False] * cap
        self.probe_cycle = [-1] * cap
        self.probe_addr = [0] * cap
        self.probe_store: List[Optional[bool]] = [None] * cap
        #: CHT prediction already counted for this dynamic load (the stat
        #: is once per dynamic instruction, not once per issue poll).
        self.cht_counted = [False] * cap

    @classmethod
    def for_config(cls, config: "MachineConfig") -> "Window":
        """Size a window for one machine: every live scheduler/LSQ entry sits
        in the reorder buffer, so the live ``seq`` span is bounded by how far
        fetch can run ahead of a stalled head; a 16x safety factor over the
        ROB+fetch-queue span covers deep squash/refetch churn."""
        span = config.rob_size + config.fetch_queue_size + config.fetch_width
        return cls(16 * span)
