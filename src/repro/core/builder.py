"""The declarative stage-graph builder: machine construction as data.

:class:`MachineBuilder` owns everything :class:`~repro.core.pipeline.
Processor` used to hard-wire in its constructor: it assembles the substrates
(branch prediction, renaming + integration, scheduler, load/store queue,
memory hierarchy, DIVA) and the four stage components of
:mod:`repro.core.stages` from *per-slot factory methods*, wires them into a
:class:`Machine`, and hands that to the engine.  Each factory is one **slot**
of the stage graph; a *machine variant* (see :mod:`repro.variants`) is a
small ``MachineBuilder`` subclass overriding the slots it cares about::

    class OracleBPVariant(MachineBuilder):
        name = "oracle-bp"
        description = "perfect branch prediction from the functional stream"

        def build_predictor(self, config, program, arch):
            return OracleBranchPredictor(config.branch_predictor,
                                         program, arch)

Because the builder is the *only* place construction happens, a variant
composes with every layer above it for free: the experiment runner, the
checkpointed-slice sharding engine and the CLI all just carry the variant
name inside :class:`~repro.core.config.MachineConfig` (where it participates
in ``fingerprint()`` and therefore in every cache key).

Slot inventory (the order below is construction order):

========================  ====================================================
slot                      builds
========================  ====================================================
``build_arch_state``      architectural state (fresh or from a checkpoint)
``build_diva``            the DIVA checker that owns architectural state
``build_memory``          the cache/TLB hierarchy
``build_predictor``       the front-end branch prediction unit
``build_prf``             the physical register file
``build_map_table``       the logical-to-physical map table
``build_renamer``         the renamer (map table + free list discipline)
``build_integration``     the rename-time integration logic + tables
``build_rob``             the reorder buffer
``build_window``          the shared structure-of-arrays in-flight window
``build_scheduler``       the reservation stations / select logic
``build_lsq``             the load/store queue
``build_cht``             the collision history table
``build_stats``           the :class:`SimStats` the run accumulates into
``build_frontend``        the fetch/decode stage component
``build_recovery``        the cross-stage mis-speculation recovery controller
``build_rename_stage``    the rename + integration stage component
``build_execute_stage``   the schedule/regread/execute/writeback component
``build_commit_stage``    the DIVA-check + retire stage component
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.config import MachineConfig
from repro.core.diva import DivaChecker
from repro.core.lsq import CollisionHistoryTable, LoadStoreQueue
from repro.core.rob import ReorderBuffer
from repro.core.scheduler import ReservationStations
from repro.core.stages import (
    CommitDiva,
    FrontEnd,
    IssueExecute,
    PipelineState,
    RecoveryController,
    RenameIntegrate,
    Stage,
)
from repro.core.stats import SimStats
from repro.core.window import Window
from repro.frontend.branch_predictor import BranchPredictor
from repro.functional.memory import SparseMemory
from repro.functional.state import ArchState
from repro.integration.logic import IntegrationLogic
from repro.isa.program import Program
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rename.map_table import MapTable
from repro.rename.physical import PhysicalRegisterFile
from repro.rename.renamer import Renamer

#: The overridable factory methods, in construction order.
SLOT_NAMES: Tuple[str, ...] = (
    "build_arch_state", "build_diva", "build_memory", "build_predictor",
    "build_prf", "build_map_table", "build_renamer", "build_integration",
    "build_rob", "build_window", "build_scheduler", "build_lsq",
    "build_cht", "build_stats",
    "build_frontend", "build_recovery", "build_rename_stage",
    "build_execute_stage", "build_commit_stage",
)


@dataclass
class Machine:
    """A fully wired machine: the shared datapath plus its stage graph."""

    state: PipelineState
    front_end: FrontEnd
    recovery: RecoveryController
    rename_integrate: RenameIntegrate
    issue_execute: IssueExecute
    commit_diva: CommitDiva
    #: Program order of the stage components (front of the pipe first).
    stages: Tuple[Stage, ...]


class MachineBuilder:
    """Assembles a :class:`Machine` from overridable per-slot factories.

    The base class *is* the baseline variant: its slots build exactly the
    machine the seed ``Processor.__init__`` hard-wired, and
    :meth:`build` reproduces the seed wiring order bit-for-bit.  Subclasses
    override individual slots and inherit the rest.
    """

    #: Registry name of the variant this builder implements.
    name = "baseline"
    #: One-line human-readable description (``repro variants`` listing).
    description = ("the paper's 4-way out-of-order machine with register "
                   "integration, exactly as configured")

    # ------------------------------------------------------------------
    # substrate slots
    # ------------------------------------------------------------------
    def build_arch_state(self, program: Program,
                         initial_state: Optional[ArchState]) -> ArchState:
        """Architectural (committed) state: fresh, or resumed from a
        functional checkpoint (copied so the caller's checkpoint stays
        reusable)."""
        if initial_state is not None:
            return initial_state.copy()
        return ArchState(memory=SparseMemory(program.data), pc=program.entry)

    def build_diva(self, arch: ArchState) -> DivaChecker:
        return DivaChecker(arch)

    def build_memory(self, config: MachineConfig) -> MemoryHierarchy:
        return MemoryHierarchy(config.memsys)

    def build_predictor(self, config: MachineConfig, program: Program,
                        arch: ArchState) -> BranchPredictor:
        """The front-end prediction unit.  ``program`` and ``arch`` are
        offered so oracle variants can precompute the architectural control
        stream; the baseline predictor ignores them."""
        return BranchPredictor(config.branch_predictor)

    def build_prf(self, config: MachineConfig) -> PhysicalRegisterFile:
        icfg = config.integration
        return PhysicalRegisterFile(icfg.num_physical_regs,
                                    icfg.generation_bits,
                                    icfg.refcount_bits)

    def build_map_table(self, config: MachineConfig) -> MapTable:
        return MapTable()

    def build_renamer(self, config: MachineConfig, map_table: MapTable,
                      prf: PhysicalRegisterFile) -> Renamer:
        return Renamer(map_table, prf)

    def build_integration(self, config: MachineConfig,
                          prf: PhysicalRegisterFile) -> IntegrationLogic:
        return IntegrationLogic(config.integration, prf)

    def build_rob(self, config: MachineConfig) -> ReorderBuffer:
        return ReorderBuffer(config.rob_size)

    def build_window(self, config: MachineConfig) -> Window:
        return Window.for_config(config)

    def build_scheduler(self, config: MachineConfig,
                        prf: PhysicalRegisterFile,
                        window: Window) -> ReservationStations:
        return ReservationStations(config.rs_entries, config.ports,
                                   config.combined_ldst_port, prf=prf,
                                   window=window)

    def build_lsq(self, config: MachineConfig,
                  window: Window) -> LoadStoreQueue:
        return LoadStoreQueue(config.lsq_size, window=window)

    def build_cht(self, config: MachineConfig) -> CollisionHistoryTable:
        return CollisionHistoryTable(config.collision_history_entries)

    def build_stats(self, config: MachineConfig, program: Program,
                    name: Optional[str]) -> SimStats:
        return SimStats(benchmark=name or program.name,
                        config_name=config.integration.describe(),
                        variant=config.variant)

    # ------------------------------------------------------------------
    # stage slots
    # ------------------------------------------------------------------
    def build_frontend(self, state: PipelineState) -> FrontEnd:
        return FrontEnd(state)

    def build_recovery(self, state: PipelineState,
                       frontend: FrontEnd) -> RecoveryController:
        return RecoveryController(state, frontend)

    def build_rename_stage(self, state: PipelineState, frontend: FrontEnd,
                           recovery: RecoveryController) -> RenameIntegrate:
        return RenameIntegrate(state, frontend, recovery)

    def build_execute_stage(self, state: PipelineState,
                            recovery: RecoveryController) -> IssueExecute:
        return IssueExecute(state, recovery)

    def build_commit_stage(self, state: PipelineState,
                           recovery: RecoveryController) -> CommitDiva:
        return CommitDiva(state, recovery)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def build(self, program: Program, config: MachineConfig,
              name: Optional[str] = None,
              initial_state: Optional[ArchState] = None) -> Machine:
        """Assemble and wire a complete machine (the seed wiring order)."""
        arch = self.build_arch_state(program, initial_state)
        diva = self.build_diva(arch)
        mem = self.build_memory(config)
        predictor = self.build_predictor(config, program, arch)

        prf = self.build_prf(config)
        map_table = self.build_map_table(config)
        renamer = self.build_renamer(config, map_table, prf)
        renamer.initialize_from_values(arch.regs)
        integration = self.build_integration(config, prf)

        rob = self.build_rob(config)
        window = self.build_window(config)
        rs = self.build_scheduler(config, prf, window)
        # Operand readiness is event-driven: the PRF wakes the scheduler.
        prf.on_ready = rs.wakeup
        lsq = self.build_lsq(config, window)
        cht = self.build_cht(config)
        stats = self.build_stats(config, program, name)

        state = PipelineState(
            program=program, config=config, arch=arch, diva=diva, mem=mem,
            predictor=predictor, prf=prf, map_table=map_table,
            renamer=renamer, integration=integration, rob=rob, rs=rs,
            lsq=lsq, cht=cht, stats=stats, window=window)
        front_end = self.build_frontend(state)
        recovery = self.build_recovery(state, front_end)
        rename_integrate = self.build_rename_stage(state, front_end, recovery)
        issue_execute = self.build_execute_stage(state, recovery)
        commit_diva = self.build_commit_stage(state, recovery)
        return Machine(
            state=state, front_end=front_end, recovery=recovery,
            rename_integrate=rename_integrate, issue_execute=issue_execute,
            commit_diva=commit_diva,
            stages=(front_end, rename_integrate, issue_execute, commit_diva))

    # ------------------------------------------------------------------
    # introspection (the ``repro variants`` listing)
    # ------------------------------------------------------------------
    @classmethod
    def overridden_slots(cls) -> Tuple[str, ...]:
        """Which slots this builder overrides relative to the baseline."""
        return tuple(slot for slot in SLOT_NAMES
                     if getattr(cls, slot) is not getattr(MachineBuilder,
                                                          slot))
