"""cProfile harness over ``simulate()`` -- the ``repro profile`` command.

The ROADMAP's hot-path item names the per-cycle inner loops --
``IssueExecute._execute`` (and its load/store split) and the
:class:`~repro.core.lsq.LoadStoreQueue` indices -- as where simulation time
goes.  This module profiles one or more benchmarks through the real
:func:`repro.core.simulate` entry point (caches deliberately bypassed: a
profile of cache hits is useless) and reports

* the top-N functions by cumulative time, and
* a pinned *hot-path highlights* section extracting exactly those
  scheduler/LSQ functions, so successive PRs can diff like against like
  without fishing them out of the full table.

Pure stdlib (``cProfile``/``pstats``), so the command works everywhere the
simulator does.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core import MachineConfig, simulate
from repro.workloads import build_workload

#: (module suffix, function name) patterns pinned in the highlights
#: section: the issue/execute inner loop and the LSQ index operations.
HOT_PATH_FUNCTIONS: Tuple[Tuple[str, str], ...] = (
    ("stages/execute.py", "_execute"),
    ("stages/execute.py", "_execute_load"),
    ("stages/execute.py", "_execute_store"),
    ("stages/execute.py", "tick"),
    ("core/lsq.py", "forward_from"),
    ("core/lsq.py", "older_stores_unresolved"),
    ("core/lsq.py", "older_store_conflict_possible"),
    ("core/lsq.py", "resolve_store"),
    ("core/lsq.py", "record_load"),
    ("core/lsq.py", "insert"),
    ("core/lsq.py", "remove"),
    ("core/scheduler.py", "select"),
    ("core/scheduler.py", "wakeup"),
)


@dataclass
class FunctionProfile:
    """One row of the profile: who, how often, how long."""

    where: str            # "module.py:line(function)"
    calls: int
    total_time: float     # self time, seconds
    cumulative: float     # including callees, seconds


@dataclass
class ProfileResult:
    """Everything ``repro profile`` reports."""

    benchmarks: List[str]
    scale: float
    variant: str
    wall_seconds: float
    retired: int
    cycles: int
    top: List[FunctionProfile] = field(default_factory=list)
    highlights: List[FunctionProfile] = field(default_factory=list)

    @property
    def retired_per_second(self) -> float:
        return self.retired / self.wall_seconds if self.wall_seconds else 0.0


def _rows_from_stats(stats: pstats.Stats) -> Dict[Tuple[str, int, str],
                                                  FunctionProfile]:
    rows: Dict[Tuple[str, int, str], FunctionProfile] = {}
    for func, (_cc, ncalls, tottime, cumtime, _callers) in \
            stats.stats.items():   # type: ignore[attr-defined]
        filename, line, name = func
        short = "/".join(filename.replace("\\", "/").split("/")[-2:])
        rows[func] = FunctionProfile(
            where=f"{short}:{line}({name})",
            calls=int(ncalls), total_time=float(tottime),
            cumulative=float(cumtime))
    return rows


def _is_highlight(func: Tuple[str, int, str]) -> bool:
    filename, _line, name = func
    normalized = filename.replace("\\", "/")
    return any(normalized.endswith(suffix) and name == target
               for suffix, target in HOT_PATH_FUNCTIONS)


def profile_simulate(benchmarks: Iterable[str],
                     scale: float,
                     config: Optional[MachineConfig] = None,
                     top_n: int = 15) -> ProfileResult:
    """Profile ``simulate()`` over the given benchmarks under one config.

    All benchmarks run inside a single profiler session so the report
    reflects the aggregate hot path of the selection; workload
    construction happens *outside* the profiled region (it is not
    simulator time).
    """
    benchmarks = list(benchmarks)
    config = config or MachineConfig()
    programs = [(name, build_workload(name, scale=scale))
                for name in benchmarks]
    profiler = cProfile.Profile()
    retired = cycles = 0
    profiler.enable()
    try:
        for name, program in programs:
            stats = simulate(program, config, name=name)
            retired += stats.retired
            cycles += stats.cycles
    finally:
        profiler.disable()

    pstats_obj = pstats.Stats(profiler, stream=io.StringIO())
    rows = _rows_from_stats(pstats_obj)
    by_cumulative = sorted(rows.items(), key=lambda item: -item[1].cumulative)
    # total_tt (sum of self times) can land a hair under the root frame's
    # cumulative time; use the larger so shares never exceed 100%.
    wall = float(getattr(pstats_obj, "total_tt", 0.0))
    if by_cumulative:
        wall = max(wall, by_cumulative[0][1].cumulative)
    top = [row for func, row in by_cumulative[:max(1, top_n)]]
    highlights = [row for func, row in by_cumulative if _is_highlight(func)]
    return ProfileResult(
        benchmarks=benchmarks, scale=scale, variant=config.variant,
        wall_seconds=wall, retired=retired, cycles=cycles,
        top=top, highlights=highlights)


def _table(rows: List[FunctionProfile], wall: float, title: str) -> str:
    lines = [title,
             f"{'cum s':>9} {'cum %':>6} {'self s':>9} {'calls':>10}  where",
             "-" * 78]
    for row in rows:
        share = 100.0 * row.cumulative / wall if wall else 0.0
        lines.append(f"{row.cumulative:>9.4f} {share:>5.1f}% "
                     f"{row.total_time:>9.4f} {row.calls:>10}  {row.where}")
    return "\n".join(lines)


def report(result: ProfileResult) -> str:
    """The ``repro profile`` text report."""
    head = (f"profiled {', '.join(result.benchmarks)} at scale "
            f"{result.scale:g} (variant: {result.variant or 'baseline'}): "
            f"{result.retired} retired / {result.cycles} cycles in "
            f"{result.wall_seconds:.2f}s "
            f"({result.retired_per_second:,.0f} retired insts/s)")
    top = _table(result.top, result.wall_seconds,
                 f"\ntop {len(result.top)} by cumulative time")
    hot = _table(result.highlights, result.wall_seconds,
                 "\nhot-path highlights (IssueExecute + LSQ/scheduler "
                 "indices)")
    return "\n".join((head, top, hot))
