"""cProfile harness over ``simulate()`` -- the ``repro profile`` command.

This module profiles one or more benchmarks through the real
:func:`repro.core.simulate` entry point (caches deliberately bypassed: a
profile of cache hits is useless) and reports

* the top-N functions by cumulative time,
* a pinned *hot-path highlights* section extracting the per-cycle inner
  loops (issue/execute, LSQ indices, scheduler select/wakeup, the rename
  and commit stage bodies), so successive PRs can diff like against like
  without fishing them out of the full table.

The highlight set is resolved from the **live code objects** -- each entry
is looked up as an attribute on the owning class and its
``__code__.co_filename``/``co_name`` are matched against the profiler's
records.  A function that is renamed or folded into a caller simply drops
out of the pin list instead of leaving a stale pattern that silently
matches nothing (which is how an earlier hard-coded table ended up
printing an empty highlights section after the structure-of-arrays
rewrite).

``to_dict``/``diff_reports`` serialise a run to JSON and compare two such
files hot line by hot line (``repro profile --json`` / ``--diff``).  Rows
are keyed by ``module.py(function)`` -- no line numbers, so a diff
survives unrelated edits that shift code around.

Pure stdlib (``cProfile``/``pstats``), so the command works everywhere the
simulator does.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core import MachineConfig, simulate
from repro.workloads import build_workload

#: Schema tag written into ``repro profile --json`` files.
JSON_SCHEMA = 1


def hot_path_targets() -> Tuple[Tuple[str, str], ...]:
    """The pinned hot-path functions as live ``(filename, name)`` pairs.

    Resolved at call time from the classes that own the per-cycle inner
    loops; attributes that no longer exist are skipped, so the pin list
    tracks refactors automatically.
    """
    from repro.core.lsq import LoadStoreQueue
    from repro.core.scheduler import ReservationStations
    from repro.core.stages.commit import CommitDiva
    from repro.core.stages.execute import IssueExecute
    from repro.core.stages.frontend import FrontEnd
    from repro.core.stages.rename import RenameIntegrate

    wanted = (
        (IssueExecute, ("tick", "writeback", "_execute", "_execute_load",
                        "_execute_store", "_load_can_issue")),
        (LoadStoreQueue, ("forward_from", "older_stores_unresolved",
                          "older_store_conflict_possible", "resolve_store",
                          "record_load", "insert", "remove")),
        (ReservationStations, ("select", "wakeup", "insert")),
        (RenameIntegrate, ("tick", "_rename_one")),
        (CommitDiva, ("tick", "_retire_commit")),
        (FrontEnd, ("tick",)),
    )
    targets: List[Tuple[str, str]] = []
    for cls, names in wanted:
        for name in names:
            code = getattr(getattr(cls, name, None), "__code__", None)
            if code is not None:
                targets.append((code.co_filename, code.co_name))
    return tuple(targets)


@dataclass
class FunctionProfile:
    """One row of the profile: who, how often, how long."""

    where: str            # "module.py:line(function)"
    calls: int
    total_time: float     # self time, seconds
    cumulative: float     # including callees, seconds
    key: str = ""         # "module.py(function)" -- line-number free

    def to_dict(self) -> dict:
        return {"where": self.where, "key": self.key, "calls": self.calls,
                "total_time": self.total_time,
                "cumulative": self.cumulative}


@dataclass
class ProfileResult:
    """Everything ``repro profile`` reports."""

    benchmarks: List[str]
    scale: float
    variant: str
    wall_seconds: float
    retired: int
    cycles: int
    cycles_elided: int = 0
    top: List[FunctionProfile] = field(default_factory=list)
    highlights: List[FunctionProfile] = field(default_factory=list)

    @property
    def retired_per_second(self) -> float:
        return self.retired / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def elided_fraction(self) -> float:
        return self.cycles_elided / self.cycles if self.cycles else 0.0


def _rows_from_stats(stats: pstats.Stats) -> Dict[Tuple[str, int, str],
                                                  FunctionProfile]:
    rows: Dict[Tuple[str, int, str], FunctionProfile] = {}
    for func, (_cc, ncalls, tottime, cumtime, _callers) in \
            stats.stats.items():   # type: ignore[attr-defined]
        filename, line, name = func
        short = "/".join(filename.replace("\\", "/").split("/")[-2:])
        rows[func] = FunctionProfile(
            where=f"{short}:{line}({name})",
            calls=int(ncalls), total_time=float(tottime),
            cumulative=float(cumtime), key=f"{short}({name})")
    return rows


def profile_simulate(benchmarks: Iterable[str],
                     scale: float,
                     config: Optional[MachineConfig] = None,
                     top_n: int = 15) -> ProfileResult:
    """Profile ``simulate()`` over the given benchmarks under one config.

    All benchmarks run inside a single profiler session so the report
    reflects the aggregate hot path of the selection; workload
    construction happens *outside* the profiled region (it is not
    simulator time).
    """
    benchmarks = list(benchmarks)
    config = config or MachineConfig()
    programs = [(name, build_workload(name, scale=scale))
                for name in benchmarks]
    profiler = cProfile.Profile()
    retired = cycles = cycles_elided = 0
    profiler.enable()
    try:
        for name, program in programs:
            stats = simulate(program, config, name=name)
            retired += stats.retired
            cycles += stats.cycles
            cycles_elided += stats.cycles_elided
    finally:
        profiler.disable()

    pstats_obj = pstats.Stats(profiler, stream=io.StringIO())
    rows = _rows_from_stats(pstats_obj)
    by_cumulative = sorted(rows.items(), key=lambda item: -item[1].cumulative)
    # total_tt (sum of self times) can land a hair under the root frame's
    # cumulative time; use the larger so shares never exceed 100%.
    wall = float(getattr(pstats_obj, "total_tt", 0.0))
    if by_cumulative:
        wall = max(wall, by_cumulative[0][1].cumulative)
    targets = set(hot_path_targets())
    top = [row for func, row in by_cumulative[:max(1, top_n)]]
    highlights = [row for (filename, _line, name), row in by_cumulative
                  if (filename, name) in targets]
    return ProfileResult(
        benchmarks=benchmarks, scale=scale, variant=config.variant,
        wall_seconds=wall, retired=retired, cycles=cycles,
        cycles_elided=cycles_elided, top=top, highlights=highlights)


def _table(rows: List[FunctionProfile], wall: float, title: str) -> str:
    lines = [title,
             f"{'cum s':>9} {'cum %':>6} {'self s':>9} {'calls':>10}  where",
             "-" * 78]
    for row in rows:
        share = 100.0 * row.cumulative / wall if wall else 0.0
        lines.append(f"{row.cumulative:>9.4f} {share:>5.1f}% "
                     f"{row.total_time:>9.4f} {row.calls:>10}  {row.where}")
    return "\n".join(lines)


def report(result: ProfileResult) -> str:
    """The ``repro profile`` text report."""
    head = (f"profiled {', '.join(result.benchmarks)} at scale "
            f"{result.scale:g} (variant: {result.variant or 'baseline'}): "
            f"{result.retired} retired / {result.cycles} cycles in "
            f"{result.wall_seconds:.2f}s "
            f"({result.retired_per_second:,.0f} retired insts/s); "
            f"{result.cycles_elided} cycles elided "
            f"({result.elided_fraction:.1%} jumped, not stepped)")
    top = _table(result.top, result.wall_seconds,
                 f"\ntop {len(result.top)} by cumulative time")
    hot = _table(result.highlights, result.wall_seconds,
                 "\nhot-path highlights (per-cycle stage bodies + "
                 "LSQ/scheduler indices)")
    return "\n".join((head, top, hot))


# ----------------------------------------------------------------------
# JSON serialisation and before/after diffing
# ----------------------------------------------------------------------
def to_dict(result: ProfileResult) -> dict:
    """Serialise a run for ``repro profile --json``."""
    return {
        "schema": JSON_SCHEMA,
        "benchmarks": result.benchmarks,
        "scale": result.scale,
        "variant": result.variant,
        "wall_seconds": result.wall_seconds,
        "retired": result.retired,
        "cycles": result.cycles,
        "cycles_elided": result.cycles_elided,
        "top": [row.to_dict() for row in result.top],
        "highlights": [row.to_dict() for row in result.highlights],
    }


def diff_reports(before: dict, after: dict) -> str:
    """Hot-line comparison of two ``repro profile --json`` files.

    Rows are joined on the line-number-free ``key``; the union of both
    files' top and highlight sections is compared so a function that fell
    out of (or newly entered) the top-N still shows up.  Sorted by the
    absolute change in cumulative seconds, biggest movement first.
    """
    def rows_by_key(data: dict) -> Dict[str, dict]:
        merged: Dict[str, dict] = {}
        for row in list(data.get("top", [])) + list(data.get("highlights",
                                                             [])):
            merged[row["key"]] = row
        return merged

    rows_a = rows_by_key(before)
    rows_b = rows_by_key(after)
    keys = set(rows_a) | set(rows_b)

    def delta(key: str) -> float:
        a = rows_a.get(key, {}).get("cumulative", 0.0)
        b = rows_b.get(key, {}).get("cumulative", 0.0)
        return b - a

    lines = [
        f"profile diff: {', '.join(before.get('benchmarks', []))} "
        f"@{before.get('scale', '?')} -> "
        f"{', '.join(after.get('benchmarks', []))} "
        f"@{after.get('scale', '?')}",
        f"wall: {before.get('wall_seconds', 0.0):.3f}s -> "
        f"{after.get('wall_seconds', 0.0):.3f}s   cycles: "
        f"{before.get('cycles', 0)} -> {after.get('cycles', 0)}",
        "",
        f"{'before s':>10} {'after s':>10} {'delta s':>10} {'ratio':>7}  "
        f"hot line",
        "-" * 78,
    ]
    for key in sorted(keys, key=lambda k: -abs(delta(k))):
        a = rows_a.get(key)
        b = rows_b.get(key)
        cum_a = a["cumulative"] if a else 0.0
        cum_b = b["cumulative"] if b else 0.0
        if a and b:
            ratio = f"{cum_b / cum_a:6.2f}x" if cum_a else "      -"
        elif a:
            ratio = "   gone"
        else:
            ratio = "    new"
        lines.append(f"{cum_a:>10.4f} {cum_b:>10.4f} {cum_b - cum_a:>+10.4f} "
                     f"{ratio}  {key}")
    return "\n".join(lines)
