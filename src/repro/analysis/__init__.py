"""Result analysis helpers: speedups, means, the Figure 5 breakdowns,
(matplotlib-gated) figure plotting in :mod:`repro.analysis.plots`, and the
``repro profile`` cProfile harness in :mod:`repro.analysis.profiling`."""

from repro.analysis.metrics import (
    speedup,
    geometric_mean,
    arithmetic_mean,
    speedup_table,
)
from repro.analysis.breakdowns import (
    type_breakdown,
    distance_breakdown,
    status_breakdown,
    refcount_breakdown,
    full_breakdown_report,
)

__all__ = [
    "speedup",
    "geometric_mean",
    "arithmetic_mean",
    "speedup_table",
    "type_breakdown",
    "distance_breakdown",
    "status_breakdown",
    "refcount_breakdown",
    "full_breakdown_report",
]
