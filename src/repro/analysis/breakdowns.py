"""Integration-retirement-stream breakdowns (paper Figure 5).

Each function turns the raw counters collected by the timing core into the
normalised fractions the paper plots: instruction type, integration distance,
result status at integration time, and reference count at integration time.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.stats import (
    DISTANCE_BUCKETS,
    IntegrationType,
    ResultStatus,
    SimStats,
)


def type_breakdown(stats: SimStats) -> Dict[str, float]:
    """Fraction of retired integrating instructions per instruction type,
    with the reverse-integration share reported separately."""
    total = stats.integrated
    result: Dict[str, float] = {}
    for itype in IntegrationType:
        direct = stats.integration_by_type[itype] - stats.reverse_by_type[itype]
        reverse = stats.reverse_by_type[itype]
        result[itype.value] = (direct + reverse) / total if total else 0.0
        result[f"{itype.value}_reverse"] = reverse / total if total else 0.0
    return result


def per_type_integration_rates(stats: SimStats) -> Dict[str, float]:
    """Integration rate *within* each instruction type (e.g. the paper's
    "loads are integrated at a rate of 27%, stack loads at 60%")."""
    rates: Dict[str, float] = {}
    for itype in IntegrationType:
        retired = stats.retired_by_type[itype]
        integrated = stats.integration_by_type[itype]
        rates[itype.value] = integrated / retired if retired else 0.0
    return rates


def distance_breakdown(stats: SimStats) -> Dict[int, float]:
    """Cumulative fraction of integrations within each distance bucket."""
    total = stats.integrated
    result: Dict[int, float] = {}
    running = 0
    buckets = sorted(set(list(DISTANCE_BUCKETS)
                         + list(stats.integration_distance.keys())))
    for bucket in buckets:
        running += stats.integration_distance.get(bucket, 0)
        result[bucket] = running / total if total else 0.0
    return result


def status_breakdown(stats: SimStats) -> Dict[str, float]:
    """Fraction of integrations by result status at integration time."""
    total = sum(stats.integration_status.values())
    return {status.value: (stats.integration_status[status] / total
                           if total else 0.0)
            for status in ResultStatus}


def refcount_breakdown(stats: SimStats) -> Dict[int, float]:
    """Fraction of integrations whose post-integration reference count is
    exactly ``n`` (keys are the counts observed)."""
    total = sum(stats.integration_refcount.values())
    return {count: value / total if total else 0.0
            for count, value in sorted(stats.integration_refcount.items())}


def sharing_degree_fractions(stats: SimStats) -> Dict[str, float]:
    """Summary of simultaneous sharing: how many integrations happened while
    the result was still actively mapped, and how many needed more than a
    2-bit reference counter."""
    total = sum(stats.integration_refcount.values())
    if not total:
        return {"active_share": 0.0, "beyond_2bit": 0.0}
    active = sum(v for k, v in stats.integration_refcount.items() if k >= 2)
    beyond = sum(v for k, v in stats.integration_refcount.items() if k > 3)
    return {"active_share": active / total, "beyond_2bit": beyond / total}


def full_breakdown_report(stats: SimStats) -> str:
    """Human-readable report of all four Figure 5 breakdowns for one run."""
    lines = [f"Integration stream breakdowns -- {stats.benchmark} "
             f"({stats.config_name})",
             f"  integration rate: {stats.integration_rate:.1%} "
             f"(direct {stats.direct_integration_rate:.1%}, "
             f"reverse {stats.reverse_integration_rate:.1%})"]
    lines.append("  by type:")
    for key, value in type_breakdown(stats).items():
        if not key.endswith("_reverse") and value:
            lines.append(f"    {key:10s} {value:6.1%}")
    lines.append("  per-type integration rates:")
    for key, value in per_type_integration_rates(stats).items():
        if value:
            lines.append(f"    {key:10s} {value:6.1%}")
    lines.append("  by distance (cumulative):")
    for bucket, value in distance_breakdown(stats).items():
        lines.append(f"    <= {bucket:5d}   {value:6.1%}")
    lines.append("  by result status:")
    for key, value in status_breakdown(stats).items():
        lines.append(f"    {key:10s} {value:6.1%}")
    lines.append("  by reference count:")
    for count, value in refcount_breakdown(stats).items():
        lines.append(f"    rc={count:<3d}     {value:6.1%}")
    return "\n".join(lines)
