"""Speedup and mean helpers used by the experiment reporters.

The paper reports *arithmetic* means of integration rates and *geometric*
means of speedups; these helpers follow that convention.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence

from repro.core.stats import SimStats


def speedup(baseline: SimStats, improved: SimStats) -> float:
    """Relative speedup of ``improved`` over ``baseline`` (0.08 == +8%).

    Both runs must have retired the same program; speedup is computed from
    cycle counts so partial-run comparisons stay meaningful.
    """
    if improved.cycles == 0:
        return 0.0
    return baseline.cycles / improved.cycles - 1.0


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of speedups expressed as fractions (e.g. 0.08)."""
    values = list(values)
    if not values:
        return 0.0
    log_sum = sum(math.log(1.0 + v) for v in values)
    return math.exp(log_sum / len(values)) - 1.0


def speedup_table(baselines: Mapping[str, SimStats],
                  improved: Mapping[str, SimStats]) -> Dict[str, float]:
    """Per-benchmark speedups plus the ``GMean`` row, as the paper reports."""
    table = {}
    for name, base in baselines.items():
        if name in improved:
            table[name] = speedup(base, improved[name])
    table["GMean"] = geometric_mean(table.values())
    return table


def format_table(rows: Sequence[Mapping], columns: Sequence[str],
                 title: str = "") -> str:
    """Render a list of dict rows as a plain-text table."""
    widths = {col: max(len(col), *(len(_fmt(row.get(col))) for row in rows))
              for col in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(col)).ljust(widths[col])
                               for col in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
