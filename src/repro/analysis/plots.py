"""Matplotlib-gated rendering of the paper's figure panels.

Every plotter takes the structured ``run()`` result of its experiment module
and writes one PNG panel; on a warm result cache this renders every figure
without a single simulation.  The CLI surface is
``python -m repro figures --plot-dir DIR``.

matplotlib is an *optional* dependency: nothing in this module imports it at
module scope, and a missing installation produces a one-line
:class:`MissingDependencyError` (a :class:`SystemExit` subclass, matching
the ``EnvVarError`` convention) instead of an ``ImportError`` traceback.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional


class MissingDependencyError(SystemExit):
    """An optional dependency needed by the requested feature is absent."""

    def __init__(self, package: str, feature: str):
        self.package = package
        super().__init__(
            f"{feature} requires the optional dependency {package!r} "
            f"(pip install {package}), which is not installed")


def matplotlib_available() -> bool:
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def _pyplot():
    """Import pyplot, headless-safe, or fail with one line.

    The Agg backend is selected only when pyplot has not been imported yet
    (the CLI / test path, which must work without a display); an
    interactive session that already chose its backend keeps it -- the
    plotters only save to files, never show.
    """
    import sys

    try:
        import matplotlib
    except ImportError:
        raise MissingDependencyError("matplotlib", "--plot-dir") from None
    if "matplotlib.pyplot" not in sys.modules:
        matplotlib.use("Agg")
    import matplotlib.pyplot as plt
    return plt


def _save(fig, outdir: Path, name: str) -> Path:
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / name
    fig.savefig(path, dpi=120, bbox_inches="tight")
    return path


# ----------------------------------------------------------------------
# one plotter per experiment module
# ----------------------------------------------------------------------
def plot_figure4(result, outdir: Path) -> Path:
    """Grouped speedup bars (top) and integration-rate bars (bottom)."""
    plt = _pyplot()
    from repro.experiments.figure4 import EXTENSION_CONFIGS

    benchmarks = result.benchmarks
    extensions = [e for e in EXTENSION_CONFIGS if e in result.results]
    fig, (ax_spd, ax_rate) = plt.subplots(
        2, 1, figsize=(max(7.0, 0.9 * len(benchmarks) + 2), 6.4),
        sharex=True)
    positions = range(len(benchmarks))
    width = 0.8 / max(1, len(extensions))
    for i, extension in enumerate(extensions):
        speedups = result.speedups(extension)
        rates = result.integration_rates(extension)
        offsets = [p + (i - (len(extensions) - 1) / 2) * width
                   for p in positions]
        ax_spd.bar(offsets, [100.0 * speedups[n] for n in benchmarks],
                   width=width, label=extension)
        ax_rate.bar(offsets, [100.0 * rates[n] for n in benchmarks],
                    width=width, label=extension)
    ax_spd.set_ylabel("speedup over no-integration (%)")
    ax_spd.legend(fontsize=8)
    ax_spd.set_title("Figure 4 -- integration extensions")
    ax_rate.set_ylabel("integration rate (%)")
    ax_rate.set_xticks(list(positions))
    ax_rate.set_xticklabels(benchmarks, rotation=45, ha="right", fontsize=8)
    path = _save(fig, outdir, "figure4.png")
    plt.close(fig)
    return path


def plot_figure5(result, outdir: Path) -> Path:
    """Stacked integration-stream type breakdown per benchmark."""
    plt = _pyplot()
    breakdowns = result.type_breakdowns()
    benchmarks = result.benchmarks
    categories = sorted({cat for b in breakdowns.values() for cat in b})
    fig, ax = plt.subplots(
        figsize=(max(7.0, 0.6 * len(benchmarks) + 2), 4.2))
    bottoms = [0.0] * len(benchmarks)
    for category in categories:
        values = [100.0 * breakdowns[n].get(category, 0.0)
                  for n in benchmarks]
        ax.bar(benchmarks, values, bottom=bottoms, label=category)
        bottoms = [b + v for b, v in zip(bottoms, values)]
    ax.set_ylabel("fraction of integrations (%)")
    ax.set_title("Figure 5 -- integration stream by instruction type")
    ax.legend(fontsize=8)
    plt.setp(ax.get_xticklabels(), rotation=45, ha="right", fontsize=8)
    path = _save(fig, outdir, "figure5.png")
    plt.close(fig)
    return path


def plot_figure6(result, outdir: Path) -> Path:
    """IT associativity and size sweeps (mean speedup + integration rate)."""
    plt = _pyplot()
    fig, (ax_assoc, ax_size) = plt.subplots(1, 2, figsize=(9.0, 3.6))

    assoc_spd = result.assoc_speedups()
    assoc_rate = result.assoc_integration_rates()
    labels = list(assoc_spd)
    ax_assoc.plot(labels, [100.0 * assoc_spd[k] for k in labels],
                  marker="o", label="speedup")
    ax_assoc.plot(labels, [100.0 * assoc_rate[k] for k in labels],
                  marker="s", label="integration rate")
    ax_assoc.set_xlabel("IT associativity")
    ax_assoc.set_ylabel("%")
    ax_assoc.legend(fontsize=8)

    size_spd = result.size_speedups()
    size_rate = result.size_integration_rates()
    sizes = sorted(size_spd)
    ax_size.plot([str(s) for s in sizes],
                 [100.0 * size_spd[s] for s in sizes],
                 marker="o", label="speedup")
    ax_size.plot([str(s) for s in sizes],
                 [100.0 * size_rate[s] for s in sizes],
                 marker="s", label="integration rate")
    ax_size.set_xlabel("IT entries")
    ax_size.legend(fontsize=8)
    fig.suptitle("Figure 6 -- integration table geometry")
    path = _save(fig, outdir, "figure6.png")
    plt.close(fig)
    return path


def plot_figure7(result, outdir: Path) -> Path:
    """Mean speedups of the reduced-complexity execution engines."""
    plt = _pyplot()
    machine_variants = list(result.results)
    fig, ax = plt.subplots(figsize=(6.4, 3.6))
    width = 0.38
    positions = range(len(machine_variants))
    without = []
    with_int = []
    for variant in machine_variants:
        without.append(100.0 * result.mean_speedup(variant, "none"))
        with_int.append(100.0 * result.mean_speedup(variant, "integration"))
    ax.bar([p - width / 2 for p in positions], without, width=width,
           label="no integration")
    ax.bar([p + width / 2 for p in positions], with_int, width=width,
           label="integration")
    ax.set_xticks(list(positions))
    ax.set_xticklabels(machine_variants)
    ax.set_ylabel("speedup over base machine (%)")
    ax.set_title("Figure 7 -- reduced-complexity engines")
    ax.legend(fontsize=8)
    path = _save(fig, outdir, "figure7.png")
    plt.close(fig)
    return path


def plot_scenarios(result, outdir: Path) -> Path:
    """Per-benchmark IPC of every machine variant in the scenario matrix."""
    plt = _pyplot()
    benchmarks = result.benchmarks
    variants = result.variants
    fig, ax = plt.subplots(
        figsize=(max(7.0, 0.9 * len(benchmarks) + 2), 4.0))
    positions = range(len(benchmarks))
    width = 0.8 / max(1, len(variants))
    for i, variant in enumerate(variants):
        offsets = [p + (i - (len(variants) - 1) / 2) * width
                   for p in positions]
        ax.bar(offsets, [result.results[variant][n].ipc for n in benchmarks],
               width=width, label=variant)
    ax.set_xticks(list(positions))
    ax.set_xticklabels(benchmarks, rotation=45, ha="right", fontsize=8)
    ax.set_ylabel("IPC")
    ax.set_title("Scenario matrix -- machine variants")
    ax.legend(fontsize=8)
    path = _save(fig, outdir, "scenarios.png")
    plt.close(fig)
    return path


def plot_cpistack(result, outdir: Path) -> Path:
    """Stacked CPI-contribution bars, one pair (none/integration) per
    benchmark, segmented by stall bucket."""
    plt = _pyplot()
    from repro.experiments.cpistack import CONFIGS
    from repro.obs.cpi import CPI_BUCKETS

    benchmarks = result.benchmarks
    fig, ax = plt.subplots(
        figsize=(max(7.0, 1.1 * len(benchmarks) + 2), 4.4))
    positions = range(len(benchmarks))
    width = 0.8 / len(CONFIGS)
    hatches = {"none": None, "integration": "//"}
    colors = plt.rcParams["axes.prop_cycle"].by_key()["color"]
    for i, config in enumerate(CONFIGS):
        offsets = [p + (i - (len(CONFIGS) - 1) / 2) * width
                   for p in positions]
        bottoms = [0.0] * len(benchmarks)
        for j, bucket in enumerate(CPI_BUCKETS):
            values = [result.stack(config, n)[bucket] for n in benchmarks]
            ax.bar(offsets, values, width=width, bottom=bottoms,
                   color=colors[j % len(colors)], hatch=hatches[config],
                   label=bucket if i == 0 else None)
            bottoms = [b + v for b, v in zip(bottoms, values)]
    ax.set_xticks(list(positions))
    ax.set_xticklabels(benchmarks, rotation=45, ha="right", fontsize=8)
    ax.set_ylabel("CPI contribution (cycles / retired)")
    ax.set_title("CPI stall stacks -- plain vs hatched = "
                 "no-integration vs integration")
    ax.legend(fontsize=8)
    path = _save(fig, outdir, "cpistack.png")
    plt.close(fig)
    return path


#: Figure-name -> plotter, keyed like the CLI ``--figures`` names.
PLOTTERS = {
    "4": plot_figure4,
    "5": plot_figure5,
    "6": plot_figure6,
    "7": plot_figure7,
    "scenarios": plot_scenarios,
    "cpistack": plot_cpistack,
}


def render(name: str, result, plot_dir: Path) -> Optional[Path]:
    """Render the panel for figure ``name`` (None when it has no plotter)."""
    plotter = PLOTTERS.get(name)
    if plotter is None:
        return None
    return plotter(result, Path(plot_dir))
