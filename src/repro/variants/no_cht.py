"""The ``no-cht`` variant: naive squash-on-collision disambiguation.

The baseline machine filters repeat memory-order violations with a collision
history table: a load whose PC has collided before waits until every older
store address is resolved.  This variant removes the filter -- every load
issues speculatively every time, and every collision costs a full squash --
which is the classic "naive speculation" control for the CHT's value.  The
table object stays in place (the issue stage still consults the slot), but
it never predicts and never learns, so ``cht_hits`` is structurally zero
while ``cht_trainings`` keeps counting the violations the filter would have
absorbed.
"""

from __future__ import annotations

from repro.core.builder import MachineBuilder
from repro.core.config import MachineConfig
from repro.core.lsq import CollisionHistoryTable
from repro.variants import register


class NeverPredictCHT(CollisionHistoryTable):
    """A collision history table that never constrains a load.

    ``train`` still counts violations (the statistic is how the scenario
    matrix quantifies the squash traffic the real table suppresses) but
    stores no tags, and ``predicts_collision`` is constantly False.
    """

    def predicts_collision(self, pc: int) -> bool:
        return False

    def train(self, pc: int) -> None:
        self.trainings += 1


@register
class NoCHTVariant(MachineBuilder):
    """Loads always issue speculatively; collisions always squash."""

    name = "no-cht"
    description = ("collision history table removed: loads never wait on "
                   "older stores and every collision squashes")

    def build_cht(self, config: MachineConfig) -> CollisionHistoryTable:
        return NeverPredictCHT(config.collision_history_entries)
