"""The machine-variant registry: named stage-graph assemblies.

A *variant* is a named :class:`~repro.core.builder.MachineBuilder` subclass
overriding one or more construction slots; the registry maps the name
carried in :attr:`MachineConfig.variant <repro.core.config.MachineConfig>`
to the builder class the engine instantiates.  Because the variant name
participates in the configuration fingerprint, every layer above the core
-- the run cache, the sharded-slice scheduler, the experiment sweeps --
distinguishes variants automatically.

Shipped variants:

=================  ==========================================================
``baseline``       the paper's machine, bit-identical to the seed engine
``no-integration`` integration logic stubbed off (the paper's control)
``oracle-bp``      perfect branch/target prediction from the functional
                   emulator's control stream
``no-cht``         no collision history table: loads always issue
                   speculatively and every collision costs a squash
``inorder-issue``  program-order select in the scheduler (in-order issue on
                   the out-of-order substrate)
=================  ==========================================================

Registering a new variant is ~10 lines: subclass ``MachineBuilder``, set
``name``/``description``, override the slots, decorate with
:func:`register`.  See ``docs/ARCHITECTURE.md`` for the full recipe.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.core.builder import MachineBuilder

DEFAULT_VARIANT = "baseline"

_REGISTRY: Dict[str, Type[MachineBuilder]] = {}


class UnknownVariantError(SystemExit):
    """An unregistered machine-variant name.

    Subclasses :class:`SystemExit` (like
    :class:`repro.experiments.runner.EnvVarError`) so a bad name aborts CLI
    runs with a one-line message instead of a ``KeyError`` traceback, while
    still being catchable in library use.
    """

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"unknown machine variant {name!r} "
            f"(registered: {', '.join(variant_names())})")


def register(cls: Type[MachineBuilder]) -> Type[MachineBuilder]:
    """Class decorator: add a :class:`MachineBuilder` subclass under its
    ``name``.  Re-registering a name replaces the previous builder (latest
    wins), which keeps test fixtures and notebooks re-runnable."""
    if not isinstance(cls.name, str) or not cls.name:
        raise ValueError(f"variant class {cls.__name__} needs a name")
    _REGISTRY[cls.name] = cls
    return cls


def get_builder(name: str) -> Type[MachineBuilder]:
    """Resolve a variant name to its builder class."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownVariantError(name) from None


def variant_names() -> Tuple[str, ...]:
    """Registered variant names, baseline first, the rest alphabetical."""
    rest = sorted(n for n in _REGISTRY if n != DEFAULT_VARIANT)
    head = [DEFAULT_VARIANT] if DEFAULT_VARIANT in _REGISTRY else []
    return tuple(head + rest)


def describe_variants() -> Dict[str, Dict[str, object]]:
    """Listing payload for the CLI: description + overridden slots."""
    return {
        name: {
            "description": _REGISTRY[name].description,
            "overrides": _REGISTRY[name].overridden_slots(),
        }
        for name in variant_names()
    }


# The baseline variant is the unmodified builder.
register(MachineBuilder)

# Import order is registration order; each module registers its variant(s).
from repro.variants.no_integration import NoIntegrationVariant  # noqa: E402
from repro.variants.oracle_bp import OracleBPVariant  # noqa: E402
from repro.variants.no_cht import NoCHTVariant  # noqa: E402
from repro.variants.inorder import InOrderIssueVariant  # noqa: E402

__all__ = [
    "DEFAULT_VARIANT",
    "InOrderIssueVariant",
    "MachineBuilder",
    "NoCHTVariant",
    "NoIntegrationVariant",
    "OracleBPVariant",
    "UnknownVariantError",
    "describe_variants",
    "get_builder",
    "register",
    "variant_names",
]
