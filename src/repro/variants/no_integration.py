"""The ``no-integration`` variant: the paper's speedup control.

Rather than flipping the ``enabled`` bit of the integration *configuration*
(which is a different configuration of the same machine), this variant stubs
the integration *logic slot* out entirely: the rename stage still consults
it, but every decision is "rename conventionally" and no integration-table
state exists to consult or maintain.  Architecturally the machine retires
the identical instruction stream -- integration only ever reuses values the
execution engine would recompute -- so the variant is the differential
baseline every integration result is measured against.
"""

from __future__ import annotations

from repro.core.builder import MachineBuilder
from repro.core.config import MachineConfig
from repro.integration.logic import (
    NO_INTEGRATION,
    IntegrationDecision,
    IntegrationLogic,
)
from repro.rename.physical import PhysicalRegisterFile
from repro.variants import register


class NullIntegrationLogic(IntegrationLogic):
    """An integration unit that never integrates and keeps no tables."""

    def __init__(self, config, prf):
        # Deliberately skip table/LISP construction: the stub holds no state.
        self.config = config
        self.prf = prf
        self.table = None
        self.lisp = None

    def consider(self, dyn, call_depth, oracle_allow=None
                 ) -> IntegrationDecision:
        return NO_INTEGRATION

    def create_entries(self, dyn, call_depth) -> None:
        return None

    def record_branch_outcome(self, dyn, taken) -> None:
        return None

    def train_lisp(self, pc) -> None:
        return None


@register
class NoIntegrationVariant(MachineBuilder):
    """Integration logic stubbed off -- the paper's control machine."""

    name = "no-integration"
    description = ("register integration stubbed out of the rename stage "
                   "(the paper's differential baseline)")

    def build_integration(self, config: MachineConfig,
                          prf: PhysicalRegisterFile) -> IntegrationLogic:
        return NullIntegrationLogic(config.integration, prf)
