"""The ``oracle-bp`` variant: perfect branch prediction.

The functional emulator already produces the architectural execution stream
(it is what DIVA checks retirement against and what sharding checkpoints),
so a perfect front end is a replay of that stream: the oracle runs a
reference emulation *lazily alongside fetch*, recording ``(pc, taken,
next_pc)`` for every control-transfer instruction and serving those
outcomes back in order.  Laziness matters for sharded runs -- a slice only
pays for the emulation its own fetch window actually reaches, instead of
re-executing from its checkpoint to the end of the program.

Position tracking rides the existing per-instruction predictor checkpoints:
the front end snapshots the predictor before every fetch and recovery
restores those snapshots, so the oracle simply carries its stream cursor in
:meth:`snapshot`/:meth:`restore` and stays aligned across memory-order
squashes and DIVA mis-integration flushes.  The only transient wrong-path
fetch left is downstream of a *mis-integrated* value (a dependent branch can
resolve with a stale operand before DIVA catches the producer); while the
fetch PC disagrees with the stream the oracle falls back to the learned
tables, and the eventual DIVA flush restores the cursor.  With integration
disabled the machine never retires a mispredicted branch.

The hybrid/BTB/RAS structures are still maintained (the RAS depth feeds the
integration-table index function, and the tables back the wrong-path
fallback), so the variant isolates exactly one effect: the cost of control
mis-speculation.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Tuple

from repro.core.builder import MachineBuilder
from repro.core.config import MachineConfig
from repro.frontend.branch_predictor import (
    BranchPrediction,
    BranchPredictor,
)
from repro.functional.emulator import Emulator
from repro.functional.state import ArchState
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass
from repro.isa.program import INST_SIZE, Program
from repro.variants import register

#: Safety bound on the oracle's reference emulation (matches the emulator's
#: default run budget).
MAX_ORACLE_INSTRUCTIONS = 2_000_000

#: Instructions emulated per lazy extension of the control stream.
STREAM_CHUNK = 4096

#: One recorded control transfer: (pc, taken, next_pc).
ControlRecord = Tuple[int, bool, int]


class OracleBranchPredictor(BranchPredictor):
    """A :class:`BranchPredictor` that replays the architectural stream.

    The stream cursor indexes the next control instruction to be fetched;
    it travels inside the predictor checkpoint (3rd snapshot element) so
    every recovery path the machine already has realigns it for free.  The
    stream itself is append-only and extended on demand, one
    :data:`STREAM_CHUNK` of emulated instructions at a time, so restoring
    the cursor backwards is always safe and fetch never pays for emulation
    beyond (slightly past) its own high-water mark.
    """

    def __init__(self, config, program: Program,
                 initial_state: Optional[ArchState] = None,
                 max_instructions: int = MAX_ORACLE_INSTRUCTIONS):
        super().__init__(config)
        state = initial_state.copy() if initial_state is not None else None
        self._emulator = Emulator(program, state=state)
        self._stream: List[ControlRecord] = []
        self._budget = max_instructions
        self._emulated = 0
        self._exhausted = False
        self._cursor = 0
        #: Predictions served from the learned tables because the fetch PC
        #: disagreed with the stream (transient wrong path downstream of a
        #: mis-integrated value).
        self.fallback_predictions = 0

    # ------------------------------------------------------------------
    # lazy reference emulation
    # ------------------------------------------------------------------
    def _extend_stream(self) -> None:
        """Advance the reference emulation by one chunk of instructions."""
        emulator = self._emulator
        stream = self._stream
        for _ in range(STREAM_CHUNK):
            if self._emulated >= self._budget:
                self._exhausted = True
                if not emulator.state.halted:
                    # An incomplete stream quietly demotes the oracle to
                    # the learned predictor -- make that loudly visible.
                    warnings.warn(
                        f"oracle-bp control stream truncated after "
                        f"{self._emulated} instructions "
                        f"({emulator.program.name} has not halted); "
                        f"later branches fall back to the learned "
                        f"predictor", RuntimeWarning, stacklevel=3)
                return
            result = emulator.step()
            if result is None:
                self._exhausted = True
                return
            self._emulated += 1
            inst = result.inst
            if inst.info.is_branch:
                stream.append((inst.pc, bool(result.taken), result.next_pc))

    # ------------------------------------------------------------------
    # checkpointing: the cursor travels with the front-end snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> tuple:
        return (self.history, self.ras.snapshot(), self._cursor)

    def restore(self, snap: tuple) -> None:
        super().restore(snap)
        if len(snap) > 2:
            self._cursor = snap[2]

    def _push_history(self, taken: bool) -> None:
        """Advancing here keeps recovery exact: ``recover_predictor_after``
        restores the checkpoint (cursor = the branch itself) and replays the
        branch's history push, which must move the cursor past it."""
        super()._push_history(taken)
        self._cursor += 1

    # ------------------------------------------------------------------
    def _truth(self, pc: int) -> Optional[ControlRecord]:
        cursor = self._cursor
        while cursor >= len(self._stream) and not self._exhausted:
            self._extend_stream()
        if cursor < len(self._stream) and self._stream[cursor][0] == pc:
            return self._stream[cursor]
        return None

    def predict(self, inst: StaticInst) -> BranchPrediction:
        cls = inst.info.cls
        pc = inst.pc
        fallthrough = pc + INST_SIZE
        checkpoint = self.snapshot()
        truth = self._truth(pc)
        if truth is None:
            # Off-stream fetch: behave like the baseline predictor (which
            # also advances history/RAS consistently with recovery replay).
            self.fallback_predictions += 1
            return super().predict(inst)
        _, taken, target = truth

        if cls is OpClass.COND_BRANCH:
            self.stats.cond_predictions += 1
            pred = BranchPrediction(pc, taken, target, self.history, True,
                                    checkpoint)
            self._push_history(taken)      # advances the cursor
            return pred

        # Unconditional control: the recovery paths never replay these
        # (under an oracle they cannot mispredict), so advance directly.
        self._cursor += 1
        if cls in (OpClass.CALL_DIRECT, OpClass.CALL_INDIRECT):
            self.ras.push(fallthrough)
        elif cls is OpClass.RETURN:
            self.ras.pop()
        return BranchPrediction(pc, True, target, self.history, False,
                                checkpoint)


@register
class OracleBPVariant(MachineBuilder):
    """Perfect branch prediction from the functional emulator's stream."""

    name = "oracle-bp"
    description = ("perfect direction/target prediction replayed from the "
                   "functional emulator's control stream")

    def build_predictor(self, config: MachineConfig, program: Program,
                        arch: ArchState) -> BranchPredictor:
        # The detailed run can retire at most retire_width instructions per
        # cycle, so this bounds the reference emulation by what the timing
        # core could ever fetch -- an instruction budget, not a cycle one.
        budget = config.max_cycles * config.retire_width
        return OracleBranchPredictor(config.branch_predictor, program, arch,
                                     max_instructions=budget)
