"""The ``inorder-issue`` variant: program-order select in the scheduler.

The reservation-station pool, the wakeup events, the port limits and the
whole downstream pipeline are untouched; only the *select* policy changes:
instructions issue strictly in program order, and the first one that cannot
issue this cycle (operands not ready, memory-ordering constraint, port
exhausted) stalls everything younger behind it.  The variant bounds how much
of the machine's performance comes from out-of-order selection as opposed to
renaming, speculation and the memory system.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.builder import MachineBuilder
from repro.core.config import MachineConfig
from repro.core.scheduler import ReservationStations
from repro.core.window import Window
from repro.isa.instruction import DynInst
from repro.rename.physical import PhysicalRegisterFile
from repro.variants import register


class InOrderReservationStations(ReservationStations):
    """Reservation stations whose select walks strictly in program order.

    ``_waiting`` is insertion-ordered and sequence numbers are allocated
    monotonically at fetch, so iterating it *is* program order; the override
    stops at the first instruction that cannot issue instead of skipping it.
    """

    def select(self, operand_ready: Callable[[DynInst], bool],
               load_can_issue: Callable[[DynInst], bool]) -> List[DynInst]:
        ports = self.ports
        limits = self._limits
        ready_pool = self._ready if self._prf is not None else None
        selected: List[DynInst] = []
        counts = {"simple": 0, "complex": 0, "load": 0, "store": 0}
        for dyn in self._waiting.values():
            if len(selected) >= ports.issue_width:
                break
            if ready_pool is not None:
                if dyn.seq not in ready_pool:
                    break
            elif not operand_ready(dyn):
                break
            port = dyn.rs_port
            if port == "load" and not load_can_issue(dyn):
                break
            if (self.combined_ldst_port and port in ("load", "store")
                    and counts["load"] + counts["store"] >= 1):
                break
            if counts[port] >= limits[port]:
                break
            counts[port] += 1
            selected.append(dyn)
        for dyn in selected:
            del self._waiting[dyn.seq]
            self._ready.pop(dyn.seq, None)
        return selected


@register
class InOrderIssueVariant(MachineBuilder):
    """Program-order issue on the otherwise unchanged machine."""

    name = "inorder-issue"
    description = ("scheduler selects strictly in program order: the first "
                   "stalled instruction blocks everything younger")

    def build_scheduler(self, config: MachineConfig,
                        prf: PhysicalRegisterFile,
                        window: Window) -> ReservationStations:
        return InOrderReservationStations(config.rs_entries, config.ports,
                                          config.combined_ldst_port, prf=prf,
                                          window=window)
